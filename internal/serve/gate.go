package serve

import (
	"context"
	"sync"
)

// gate is the fair-share stepping gate of the daemon: at most `slots`
// sessions execute step batches concurrently, and when sessions queue up
// the freed slots are handed out round-robin across *tenants*, not FIFO
// across requests — a tenant with fifty queued sessions cannot starve a
// tenant with one. Within a tenant, waiters are served in arrival order.
type gate struct {
	mu    sync.Mutex
	free  int
	queue map[string][]chan struct{}
	// order is the round-robin tenant ring; next indexes the tenant that
	// is first in line for the next freed slot.
	order []string
	next  int
}

func newGate(slots int) *gate {
	if slots < 1 {
		slots = 1
	}
	return &gate{free: slots, queue: map[string][]chan struct{}{}}
}

// acquire blocks until the tenant holds a stepping slot or ctx is done.
func (g *gate) acquire(ctx context.Context, tenant string) error {
	g.mu.Lock()
	if g.free > 0 && len(g.queue) == 0 {
		g.free--
		g.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	if _, ok := g.queue[tenant]; !ok {
		g.order = append(g.order, tenant)
	}
	g.queue[tenant] = append(g.queue[tenant], ch)
	g.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		// Either remove the abandoned waiter, or — if release already
		// handed us the slot while we were cancelling — pass it on.
		select {
		case <-ch:
			g.mu.Unlock()
			g.release()
			return context.Cause(ctx)
		default:
		}
		q := g.queue[tenant]
		for i, w := range q {
			if w == ch {
				g.queue[tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		if len(g.queue[tenant]) == 0 {
			g.dropTenant(tenant)
		}
		g.mu.Unlock()
		return context.Cause(ctx)
	}
}

// release returns a slot, handing it to the next tenant in the ring with
// a waiter (the slot transfers directly; free is untouched).
func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < len(g.order); i++ {
		idx := (g.next + i) % len(g.order)
		tenant := g.order[idx]
		q := g.queue[tenant]
		if len(q) == 0 {
			continue
		}
		g.queue[tenant] = q[1:]
		if len(g.queue[tenant]) == 0 {
			g.dropTenant(tenant)
			g.next = idx % max(len(g.order), 1)
		} else {
			g.next = (idx + 1) % len(g.order)
		}
		close(q[0])
		return
	}
	g.free++
}

// dropTenant removes a tenant with an empty queue from the ring,
// keeping next pointed at the same successor.
func (g *gate) dropTenant(tenant string) {
	delete(g.queue, tenant)
	for i, t := range g.order {
		if t == tenant {
			g.order = append(g.order[:i:i], g.order[i+1:]...)
			if g.next > i {
				g.next--
			}
			if len(g.order) > 0 {
				g.next %= len(g.order)
			} else {
				g.next = 0
			}
			return
		}
	}
}
