package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"walberla/internal/scenario"
	"walberla/internal/telemetry"
)

// testScenario is a small two-rank cavity that steps in milliseconds.
func testScenario(t *testing.T, steps int) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Parse([]byte(fmt.Sprintf(`{
		"version": 1,
		"name": "serve-test",
		"geometry": {"example": "cavity"},
		"lattice": {},
		"resolution": {"grid": [2, 1, 1], "cells_per_block": [4, 4, 4]},
		"collision": {"tau": 0.65},
		"physics": {"force": [0, 0, 0], "initial_velocity": [0, 0, 0]},
		"parallel": {"ranks": 2},
		"transport": {},
		"resilience": {},
		"telemetry": {},
		"run": {"steps": %d}
	}`, steps)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSessionLifecycle drives one session through every verb and proves
// the suspend/resume cycle is bit-identical: the hash after suspend,
// resume and the remaining steps equals the hash of an uninterrupted
// scenario.Execute of the same file — the daemon and the library path
// agree to the last bit.
func TestSessionLifecycle(t *testing.T) {
	const total = 6
	sc := testScenario(t, total)
	want, err := scenario.Execute(context.Background(), sc, scenario.ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{})
	sess, err := s.Create(testScenario(t, total), "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := s.Step(ctx, sess.ID, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Suspend(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	if got := sess.info().State; got != StateSuspended {
		t.Fatalf("state after suspend = %s", got)
	}
	// Suspended sessions refuse commands.
	if _, _, err := s.Step(ctx, sess.ID, 1); err == nil {
		t.Fatal("stepped a suspended session")
	}
	if err := s.Resume(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	hash, stepped, err := s.Step(ctx, sess.ID, total-2)
	if err != nil {
		t.Fatal(err)
	}
	if stepped != total {
		t.Fatalf("stepped = %d, want %d", stepped, total)
	}
	if hash != want.Hash {
		t.Errorf("suspend/resume hash %016x != uninterrupted %016x", hash, want.Hash)
	}
	if err := s.Destroy(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(sess.ID); err == nil {
		t.Fatal("destroyed session still listed")
	}
}

// TestConcurrentSessions is the lifecycle race test: ≥3 sessions from
// different tenants create/step/steer/snapshot/suspend/resume/destroy
// concurrently over the shared gate (run under -race via make
// race-serve). Each session must still produce the exact uninterrupted
// hash — concurrency and fair-share scheduling may never leak state
// between sessions.
func TestConcurrentSessions(t *testing.T) {
	const (
		sessions = 4
		total    = 6
	)
	want, err := scenario.Execute(context.Background(), testScenario(t, total), scenario.ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{MaxSessions: sessions, MaxConcurrentSteps: 2})
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			sess, err := s.Create(testScenario(t, total), fmt.Sprintf("tenant-%d", i%2))
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := s.Step(ctx, sess.ID, 3); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := s.Suspend(ctx, sess.ID); err != nil {
					t.Error(err)
					return
				}
				if err := s.Resume(ctx, sess.ID); err != nil {
					t.Error(err)
					return
				}
			}
			if _, _, err := s.Step(ctx, sess.ID, total-3-1); err != nil {
				t.Error(err)
				return
			}
			hash, stepped, err := s.Step(ctx, sess.ID, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if stepped != total || hash != want.Hash {
				t.Errorf("session %s: steps %d hash %016x, want %d/%016x",
					sess.ID, stepped, hash, total, want.Hash)
			}
			if err := s.Destroy(ctx, sess.ID); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestAdmissionControl: the resident-session cap refuses creation with a
// typed 429, and a suspended session frees its slot.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 1})
	ctx := context.Background()
	first, err := s.Create(testScenario(t, 4), "a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Create(testScenario(t, 4), "b")
	apiStatus(t, err, 429)
	if err := s.Suspend(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := s.Create(testScenario(t, 4), "b")
	if err != nil {
		t.Fatalf("create after suspend: %v", err)
	}
	// Resuming the first now exceeds the cap again.
	apiStatus(t, s.Resume(ctx, first.ID), 429)
	if err := s.Destroy(ctx, second.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(ctx, first.ID); err != nil {
		t.Fatalf("resume after destroy: %v", err)
	}
}

func apiStatus(t *testing.T, err error, want int) {
	t.Helper()
	var api *APIError
	if err == nil || !errors.As(err, &api) || api.Status != want {
		t.Fatalf("error = %v, want API status %d", err, want)
	}
}

// TestHTTPAPI drives the full HTTP surface end to end over httptest,
// including scenario rejection, session metrics labels and the VTK frame
// manifest.
func TestHTTPAPI(t *testing.T) {
	metrics := telemetry.NewMetricsServer()
	s := newTestServer(t, Config{Metrics: metrics})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
		return resp.StatusCode, out
	}

	// Rejection: an unknown field is a 400 with the offending name.
	code, out := post("/v1/sessions", map[string]any{"version": 1, "geomtry": map[string]any{}})
	if code != 400 || !strings.Contains(fmt.Sprint(out["error"]), "geomtry") {
		t.Fatalf("bad scenario → %d %v", code, out)
	}

	code, out = post("/v1/sessions", map[string]any{
		"tenant":   "curl",
		"scenario": json.RawMessage(mustJSON(t, testScenario(t, 5))),
	})
	if code != 201 {
		t.Fatalf("create → %d %v", code, out)
	}
	id := fmt.Sprint(out["id"])

	code, out = post("/v1/sessions/"+id+"/step", map[string]any{"steps": 2})
	if code != 200 || out["hash"] == nil {
		t.Fatalf("step → %d %v", code, out)
	}
	hashAfter2 := fmt.Sprint(out["hash"])

	// The session's labeled metrics are live.
	sessions := get(t, ts.URL+"/metrics/sessions")
	if !strings.Contains(sessions, id) {
		t.Errorf("/metrics/sessions lacks %s: %s", id, sessions)
	}

	code, out = post("/v1/sessions/"+id+"/steer", map[string]any{"force": []float64{1e-6, 0, 0}})
	if code != 200 {
		t.Fatalf("steer → %d %v", code, out)
	}
	code, out = post("/v1/sessions/"+id+"/snapshot", nil)
	if code != 200 {
		t.Fatalf("snapshot → %d %v", code, out)
	}
	if files, ok := out["files"].([]any); !ok || len(files) != 2 {
		t.Fatalf("snapshot manifest %v, want 2 block files", out["files"])
	}

	code, out = post("/v1/sessions/"+id+"/suspend", nil)
	if code != 200 || out["state"] != string(StateSuspended) {
		t.Fatalf("suspend → %d %v", code, out)
	}
	// Suspended sessions drop off the metrics surface.
	if got := get(t, ts.URL+"/metrics/sessions"); strings.Contains(got, id) {
		t.Errorf("suspended session still on /metrics/sessions: %s", got)
	}
	code, out = post("/v1/sessions/"+id+"/resume", nil)
	if code != 200 || out["state"] != string(StateReady) {
		t.Fatalf("resume → %d %v", code, out)
	}
	code, out = post("/v1/sessions/"+id+"/step", map[string]any{"steps": 0})
	if code != 400 {
		t.Fatalf("zero steps → %d %v", code, out)
	}

	// The list shows the session with its step count.
	var list struct {
		Sessions []Info `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/v1/sessions")), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].Steps != 2 || list.Sessions[0].LastHash != hashAfter2 {
		t.Fatalf("list = %+v", list.Sessions)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete → %d", resp.StatusCode)
	}
	if code, _ := post("/v1/sessions/"+id+"/step", map[string]any{"steps": 1}); code != 404 {
		t.Fatalf("step after delete → %d", code)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCreateRejectsRefinement: refined scenarios run on the AMR driver,
// which the stateful session loop does not host — Create must refuse
// them with a 400 rather than silently running uniform.
func TestCreateRejectsRefinement(t *testing.T) {
	s := newTestServer(t, Config{})
	sc := testScenario(t, 4)
	sc.Refinement = scenario.RefinementSpec{MaxLevel: 1, RefineAbove: 0.01}
	_, err := s.Create(sc, "tenant-a")
	if err == nil {
		t.Fatal("Create accepted a refined scenario")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if !strings.Contains(err.Error(), "refinement") {
		t.Errorf("error %q does not mention refinement", err)
	}
}
