// Package serve is the simulation-as-a-service control plane: a Server
// owns many concurrent simulation sessions, each an SPMD world built from
// a validated scenario (internal/scenario), multiplexed over a shared
// fair-share stepping gate. Sessions are created, stepped, steered,
// snapshotted, suspended to coordinated checkpoint sets and revived
// bit-identically — the HTTP surface in http.go exposes exactly these
// verbs.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"walberla/internal/scenario"
	"walberla/internal/telemetry"
)

// Config tunes the daemon.
type Config struct {
	// MaxSessions bounds the resident sessions (ready or stepping;
	// suspended sessions live on disk and do not count). Creation and
	// resume beyond the bound are refused — admission control, not
	// queueing. Default 8.
	MaxSessions int
	// MaxConcurrentSteps bounds how many sessions execute step batches at
	// once; further step requests queue on the fair-share gate (round-
	// robin across tenants). Default max(1, GOMAXPROCS/2).
	MaxConcurrentSteps int
	// DataDir is where sessions spill checkpoint sets and VTK frames;
	// default a fresh temp directory.
	DataDir string
	// Metrics, if non-nil, receives one labeled registry per session
	// rank; /metrics/sessions then serves per-session aggregates.
	Metrics *telemetry.MetricsServer
}

// Server is the session manager.
type Server struct {
	cfg  Config
	gate *gate

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	closed   bool
}

// NewServer builds a session manager. The zero Config works.
func NewServer(cfg Config) (*Server, error) {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 8
	}
	if cfg.MaxConcurrentSteps == 0 {
		cfg.MaxConcurrentSteps = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "walberla-serve-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
	} else if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		gate:     newGate(cfg.MaxConcurrentSteps),
		sessions: map[string]*Session{},
	}, nil
}

// resident counts sessions currently holding a world (callers hold s.mu).
func (s *Server) resident() int {
	n := 0
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.state == StateReady || sess.state == StateStepping {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// Create validates the scenario, admits the session, builds its forest
// once, spins up its world and returns it ready.
func (s *Server) Create(sc *scenario.Scenario, tenant string) (*Session, error) {
	if err := sc.Validate(); err != nil {
		return nil, &APIError{Status: 400, Err: err}
	}
	if sc.AMR() {
		// Sessions run the stateful uniform driver (suspend/resume via
		// checkpoint sets, supervised respawn); the AMR driver is batch-run
		// only for now. Refusing here beats silently dropping refinement.
		return nil, &APIError{Status: 400, Err: fmt.Errorf("serve: refined scenarios (refinement.max_level > 0) are not supported as sessions; run them with walberla-sim or scenario.Execute")}
	}
	p, err := sc.Problem()
	if err != nil {
		return nil, &APIError{Status: 400, Err: err}
	}
	forest, err := p.BuildForest()
	if err != nil {
		return nil, &APIError{Status: 400, Err: err}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &APIError{Status: 503, Err: fmt.Errorf("serve: server is shutting down")}
	}
	if s.resident() >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return nil, &APIError{Status: 429, Err: fmt.Errorf("serve: %d resident sessions (limit %d) — suspend or destroy one first",
			s.cfg.MaxSessions, s.cfg.MaxSessions)}
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	sess := &Session{
		ID:       id,
		Tenant:   tenant,
		srv:      s,
		scenario: sc,
		forest:   forest,
		dir:      filepath.Join(s.cfg.DataDir, id),
		state:    StateReady,
		created:  time.Now(),
	}
	s.sessions[id] = sess
	s.mu.Unlock()

	if err := os.MkdirAll(sess.dir, 0o755); err != nil {
		s.drop(id)
		return nil, err
	}
	if err := sess.start(false); err != nil {
		s.drop(id)
		return nil, err
	}
	return sess, nil
}

func (s *Server) drop(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Get returns a session by ID.
func (s *Server) Get(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, &APIError{Status: 404, Err: fmt.Errorf("serve: no session %s", id)}
	}
	return sess, nil
}

// List returns every session's status, oldest first.
func (s *Server) List() []Info {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	infos := make([]Info, len(sessions))
	for i, sess := range sessions {
		infos[i] = sess.info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// HealthSummary aggregates the resilience condition of every session —
// the /v1/healthz body.
type HealthSummary struct {
	OK bool `json:"ok"`
	// Sessions counts sessions by health (healthy/degraded/healing), plus
	// "failed" for sessions whose world died for good.
	Sessions map[string]int `json:"sessions"`
	// FailuresAbsorbed is the total number of world deaths survived by
	// supervised respawn across all sessions.
	FailuresAbsorbed int `json:"failures_absorbed"`
}

// Health reports the daemon's aggregate health: ok as long as the server
// is answering, with per-condition session counts for monitoring.
func (s *Server) Health() HealthSummary {
	sum := HealthSummary{OK: true, Sessions: map[string]int{}}
	for _, in := range s.List() {
		key := string(in.Health)
		if in.State == StateFailed {
			key = "failed"
		}
		sum.Sessions[key]++
		sum.FailuresAbsorbed += in.FailuresAbsorbed
	}
	return sum
}

// Step advances a session by n steps (queueing on the fair-share gate)
// and returns the field hash at the new step boundary.
func (s *Server) Step(ctx context.Context, id string, n int) (uint64, int, error) {
	sess, err := s.Get(id)
	if err != nil {
		return 0, 0, err
	}
	if n <= 0 {
		return 0, 0, &APIError{Status: 400, Err: fmt.Errorf("serve: steps must be positive, got %d", n)}
	}
	sess.mu.Lock()
	if sess.state == StateStepping {
		sess.mu.Unlock()
		return 0, 0, &APIError{Status: 409, Err: fmt.Errorf("serve: session %s is already stepping", id)}
	}
	if sess.state == StateReady {
		sess.state = StateStepping
	}
	sess.mu.Unlock()
	res, err := sess.send(ctx, wireCmd{Op: opStep, Steps: n})
	sess.mu.Lock()
	if sess.state == StateStepping {
		sess.state = StateReady
	}
	stepped := sess.stepped
	sess.mu.Unlock()
	if err != nil {
		return 0, stepped, err
	}
	return res.hash, stepped, nil
}

// Steer atomically replaces the session's body force between step
// batches — live steering of a running simulation.
func (s *Server) Steer(ctx context.Context, id string, force [3]float64) error {
	sess, err := s.Get(id)
	if err != nil {
		return err
	}
	_, err = sess.send(ctx, wireCmd{Op: opSteer, Force: force})
	return err
}

// Hash returns the collective field fingerprint without stepping.
func (s *Server) Hash(ctx context.Context, id string) (uint64, error) {
	sess, err := s.Get(id)
	if err != nil {
		return 0, err
	}
	res, err := sess.send(ctx, wireCmd{Op: opHash})
	return res.hash, err
}

// Snapshot writes one VTK frame per block into the session's frame
// directory and returns the frame's file manifest.
func (s *Server) Snapshot(ctx context.Context, id string) (string, []string, error) {
	sess, err := s.Get(id)
	if err != nil {
		return "", nil, err
	}
	sess.mu.Lock()
	frame := fmt.Sprintf("frame-%06d", sess.stepped)
	sess.mu.Unlock()
	dir := filepath.Join(sess.dir, frame)
	res, err := sess.send(ctx, wireCmd{Op: opSnapshot, Dir: dir})
	if err != nil {
		return "", nil, err
	}
	return frame, res.files, nil
}

// Suspend spills the session to a coordinated checkpoint set and tears
// its world down; Resume revives it bit-identically.
func (s *Server) Suspend(ctx context.Context, id string) error {
	sess, err := s.Get(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	done := sess.worldDone
	sess.mu.Unlock()
	// The checkpoint step label is stamped by the rank-0 loop at
	// execution time (a suspend may queue behind a step batch).
	if _, err := sess.send(ctx, wireCmd{Op: opSuspend}); err != nil {
		return err
	}
	<-done // the world is torn down before the state flips
	sess.mu.Lock()
	if sess.state != StateFailed {
		sess.state = StateSuspended
		sess.cmds, sess.worldDone, sess.cancel = nil, nil, nil
	}
	err = sess.err
	sess.mu.Unlock()
	return err
}

// Resume revives a suspended session: a fresh world is built on the
// session's original forest and restored from its newest checkpoint set.
// Admission control applies exactly as at creation.
func (s *Server) Resume(ctx context.Context, id string) error {
	sess, err := s.Get(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	if sess.state != StateSuspended {
		state := sess.state
		sess.mu.Unlock()
		return &APIError{Status: 409, Err: fmt.Errorf("serve: session %s is %s, not suspended", id, state)}
	}
	sess.mu.Unlock()
	s.mu.Lock()
	if s.resident() >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return &APIError{Status: 429, Err: fmt.Errorf("serve: %d resident sessions (limit %d)", s.cfg.MaxSessions, s.cfg.MaxSessions)}
	}
	s.mu.Unlock()
	return sess.start(true)
}

// Destroy interrupts any in-flight step batch, tears the world down and
// removes the session and its on-disk spill data.
func (s *Server) Destroy(ctx context.Context, id string) error {
	sess, err := s.Get(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	state := sess.state
	cancel, done := sess.cancel, sess.worldDone
	sess.state = StateDestroyed
	sess.mu.Unlock()
	if state == StateReady || state == StateStepping {
		// Cancel first so a long step batch stops at the next boundary;
		// the loop then drains our destroy command (or the cancellation
		// itself ends the residency).
		cancel(fmt.Errorf("serve: session %s destroyed", id))
		<-done
	}
	s.drop(id)
	return os.RemoveAll(sess.dir)
}

// Close destroys every session and refuses new ones.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := s.Destroy(context.Background(), id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// APIError pairs an HTTP status with an error so the transport layer
// reports refusals (validation, admission, conflicts) faithfully.
type APIError struct {
	Status int
	Err    error
}

func (e *APIError) Error() string { return e.Err.Error() }
func (e *APIError) Unwrap() error { return e.Err }
