package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
	"walberla/internal/scenario"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
)

// State is the lifecycle state of a session.
type State string

const (
	// StateReady means the session's world is resident and idle.
	StateReady State = "ready"
	// StateStepping means a step batch is executing (possibly queued on
	// the fair-share gate).
	StateStepping State = "stepping"
	// StateSuspended means the session was spilled to a checkpoint set on
	// disk and its world torn down; Resume revives it bit-identically.
	StateSuspended State = "suspended"
	// StateHealing means the world died unexpectedly and the supervisor is
	// respawning it from the session's newest checkpoint set.
	StateHealing State = "healing"
	// StateFailed means the world died with an error (kept for get/list
	// post-mortems until destroyed).
	StateFailed State = "failed"
	// StateDestroyed is terminal.
	StateDestroyed State = "destroyed"
)

// Health is the session's resilience condition, orthogonal to the
// lifecycle State: a resumed-after-death session is ready AND degraded.
type Health string

const (
	// HealthHealthy means no failure has ever been absorbed.
	HealthHealthy Health = "healthy"
	// HealthDegraded means the session absorbed at least one world death
	// (it lost the in-flight batch and resumed from its last durable set).
	HealthDegraded Health = "degraded"
	// HealthHealing means a supervised respawn is in flight right now.
	HealthHealing Health = "healing"
)

// maxSessionRespawns bounds how many world deaths the supervisor absorbs
// per session before declaring it failed for good.
const maxSessionRespawns = 3

// Session is one resident (or spilled) simulation owned by the daemon.
// Every mutation goes through its world's rank-0 command loop: rank 0
// receives a command, broadcasts it to all ranks, and every rank executes
// it collectively — exactly the SPMD discipline of the solver, so
// collective operations (stepping, hashing, checkpointing) stay deadlock
// free no matter how many sessions share the process.
type Session struct {
	ID     string
	Tenant string

	srv      *Server
	scenario *scenario.Scenario
	// forest is built once at create and reused for every revival, so a
	// resumed world restores onto the identical block assignment.
	forest *blockforest.SetupForest
	dir    string // per-session spill directory (checkpoint sets, frames)

	mu        sync.Mutex
	state     State
	health    Health
	respawns  int // world deaths absorbed by supervised respawn
	stepped   int // committed steps since creation
	lastHash  uint64
	err       error
	created   time.Time
	cmds      chan command
	worldDone chan struct{}
	cancel    context.CancelCauseFunc // interrupts an in-flight step batch
}

type cmdOp int

const (
	opStep cmdOp = iota + 1
	opSteer
	opHash
	opSnapshot
	opSuspend
	opDestroy
)

// wireCmd is the broadcast form of a command; it crosses rank boundaries
// as JSON bytes so sessions work over every transport the scenario can
// select (in-process and socket alike).
type wireCmd struct {
	Op    cmdOp      `json:"op"`
	Steps int        `json:"steps,omitempty"`
	Force [3]float64 `json:"force,omitempty"`
	Dir   string     `json:"dir,omitempty"`
	Step  int        `json:"step,omitempty"` // checkpoint step for suspend
}

type command struct {
	wire  wireCmd
	reply chan cmdResult
}

type cmdResult struct {
	hash  uint64
	files []string
	err   error
}

// Info is the externally visible session status.
type Info struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	State  State  `json:"state"`
	// Health is the resilience condition: healthy, degraded (absorbed at
	// least one world death) or healing (supervised respawn in flight).
	Health Health `json:"health"`
	// FailuresAbsorbed counts world deaths survived by respawning.
	FailuresAbsorbed int `json:"failures_absorbed,omitempty"`
	// WorldSize is the number of live ranks right now: full while the
	// world is resident, zero while it is down (suspended/healing/failed).
	WorldSize int       `json:"world_size"`
	Steps     int       `json:"steps"`
	Of        int       `json:"of"`
	Ranks     int       `json:"ranks"`
	LastHash  string    `json:"last_hash,omitempty"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
}

func (s *Session) info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := Info{
		ID:               s.ID,
		Name:             s.scenario.Name,
		Tenant:           s.Tenant,
		State:            s.state,
		Health:           s.healthLocked(),
		FailuresAbsorbed: s.respawns,
		Steps:            s.stepped,
		Of:               s.scenario.Run.Steps,
		Ranks:            s.scenario.Parallel.Ranks,
		Created:          s.created,
	}
	if s.state == StateReady || s.state == StateStepping {
		in.WorldSize = s.scenario.Parallel.Ranks
	}
	if s.lastHash != 0 {
		in.LastHash = fmt.Sprintf("%016x", s.lastHash)
	}
	if s.err != nil {
		in.Error = s.err.Error()
	}
	return in
}

// healthLocked derives the session health; caller holds s.mu.
func (s *Session) healthLocked() Health {
	if s.health == "" {
		return HealthHealthy
	}
	return s.health
}

// start spins up the session's SPMD world and blocks until every rank
// has built (and, when resuming, restored) its simulation state — or the
// spin-up failed. The world then parks in the rank-0 command loop.
func (s *Session) start(resume bool) error {
	ready := make(chan error, 1)
	cmds := make(chan command)
	done := make(chan struct{})
	ctx, cancel := context.WithCancelCause(context.Background())

	s.mu.Lock()
	s.cmds = cmds
	s.worldDone = done
	s.cancel = cancel
	s.mu.Unlock()

	go s.world(ctx, cmds, ready, done, resume)

	// A failing non-zero rank can tear the world down before rank 0 ever
	// reports readiness — watch both channels.
	var err error
	select {
	case err = <-ready:
	case <-done:
		select {
		case err = <-ready:
		default:
			err = fmt.Errorf("serve: session %s world exited during spin-up", s.ID)
		}
	}
	if err != nil {
		cancel(err)
		<-done
		s.mu.Lock()
		s.state = StateFailed
		s.err = err
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	// A destroy that raced the spin-up wins; the caller tears the fresh
	// world down (the respawn path does exactly that).
	if s.state != StateDestroyed {
		s.state = StateReady
	}
	s.mu.Unlock()
	return nil
}

// world hosts the session's SPMD ranks for one residency. It exits when
// a suspend or destroy command lands (or spin-up fails).
func (s *Session) world(ctx context.Context, cmds chan command, ready chan<- error, done chan struct{}, resume bool) {
	defer close(done)
	sc := s.scenario
	p, err := sc.Problem()
	if err != nil {
		ready <- err
		return
	}
	var mu sync.Mutex
	var worldErr error
	fail := func(err error) {
		mu.Lock()
		if worldErr == nil {
			worldErr = err
		}
		mu.Unlock()
	}
	metrics := s.srv.cfg.Metrics
	opts := sc.CommOptions()
	s.mu.Lock()
	if s.respawns > 0 {
		// An injected fault schedule describes one world incarnation; a
		// respawned world is fresh hardware and runs clean (otherwise a
		// deterministic crash would re-fire on every respawn).
		opts.Faults = nil
	}
	s.mu.Unlock()
	comm.RunWithOptions(sc.Parallel.Ranks, opts, func(c *comm.Comm) {
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case comm.Crash, comm.Hang:
					// An injected fault killed this rank. The sentinel must
					// not escape to RunWithOptions (which re-panics unhandled
					// rank deaths); the world dies as a whole and the
					// supervisor decides whether the session survives.
					fail(fmt.Errorf("serve: session %s: %v", s.ID, r))
				default:
					panic(r)
				}
			}
		}()
		var in *blockforest.SetupForest
		if c.Rank() == 0 {
			in = s.forest
		}
		bf, err := blockforest.Distribute(c, in)
		if err != nil {
			if c.Rank() == 0 {
				ready <- err
			}
			return
		}
		cfg := p.SimConfig()
		reg := telemetry.NewRegistry()
		cfg.Metrics = reg
		metrics.RegisterLabeled(s.ID, c.Rank(), reg)
		defer metrics.UnregisterLabeled(s.ID)
		st, err := sim.New(c, bf, cfg)
		if err != nil {
			if c.Rank() == 0 {
				ready <- err
			}
			return
		}
		step := 0
		if resume {
			restored, err := st.RestoreLatestCheckpointSet(s.dir)
			if err != nil {
				if c.Rank() == 0 {
					ready <- fmt.Errorf("serve: restoring session %s: %w", s.ID, err)
				}
				return
			}
			step = int(restored)
			if c.Rank() == 0 {
				// A supervised respawn may land on an older set than the
				// last committed batch; the visible step count follows the
				// state that actually survived.
				s.mu.Lock()
				s.stepped = step
				s.mu.Unlock()
			}
		}
		if c.Rank() == 0 {
			ready <- nil
		}
		if err := s.commandLoop(ctx, c, st, cmds, step); err != nil {
			fail(err)
		}
	})
	if worldErr != nil {
		s.supervise(worldErr)
	}
}

// supervise handles an unexpected world death: when the session has
// durable state (batch-granular checkpoint sets, enabled by a scenario
// with resilience.checkpoint_every > 0) and the respawn budget is not
// exhausted, it flips the session to healing and respawns the world from
// the newest set; otherwise the session fails for good. Called from the
// dying world's goroutine, right before its done channel closes.
func (s *Session) supervise(cause error) {
	s.mu.Lock()
	if s.state == StateDestroyed {
		s.mu.Unlock()
		return
	}
	durable := s.scenario.Resilience.CheckpointEvery > 0 && len(output.ListValidSets(s.dir)) > 0
	if !durable || s.respawns >= maxSessionRespawns {
		s.state = StateFailed
		s.err = cause
		s.mu.Unlock()
		return
	}
	s.state = StateHealing
	s.health = HealthHealing
	s.respawns++
	s.err = nil
	s.mu.Unlock()
	go s.respawn()
}

// respawn revives a healing session from its newest checkpoint set.
func (s *Session) respawn() {
	s.mu.Lock()
	if s.state != StateHealing {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if err := s.start(true); err != nil {
		s.mu.Lock()
		if s.state == StateHealing {
			s.state = StateFailed
			s.err = err
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if s.state == StateDestroyed {
		// Destroy raced the respawn; tear the fresh world down again.
		cancel, done := s.cancel, s.worldDone
		s.mu.Unlock()
		cancel(fmt.Errorf("serve: session %s destroyed during respawn", s.ID))
		<-done
		return
	}
	s.health = HealthDegraded
	s.mu.Unlock()
}

// commandLoop is the collective heart of a session: rank 0 pulls the
// next command and broadcasts it; every rank executes it in lockstep.
// Returns when the residency ends (suspend/destroy) or a rank errors.
// step is this rank's committed step count (the restore point when the
// world was revived); every rank tracks it locally so checkpoint-set
// labels agree without extra coordination.
func (s *Session) commandLoop(ctx context.Context, c *comm.Comm, st *sim.Simulation, cmds chan command, step int) error {
	for {
		var payload []byte
		var reply chan cmdResult
		if c.Rank() == 0 {
			var cmd command
			select {
			case cmd = <-cmds:
			case <-ctx.Done():
				cmd = command{wire: wireCmd{Op: opDestroy}}
			}
			reply = cmd.reply
			if cmd.wire.Op == opSuspend {
				// Stamp the checkpoint step at execution time: a suspend
				// queued behind a step batch must label the set with the
				// step the fields are actually at.
				s.mu.Lock()
				cmd.wire.Step = s.stepped
				s.mu.Unlock()
			}
			b, err := json.Marshal(cmd.wire)
			if err != nil {
				b = nil // broadcast an empty frame; all ranks bail together
			}
			payload = b
		}
		v, err := c.BcastErr(0, payload)
		if err != nil {
			return err
		}
		frame, _ := v.([]byte)
		var w wireCmd
		if err := json.Unmarshal(frame, &w); err != nil {
			answer(reply, cmdResult{err: fmt.Errorf("serve: bad command frame: %w", err)})
			return fmt.Errorf("serve: rank %d: bad command frame: %w", c.Rank(), err)
		}
		stop, err := s.execute(ctx, c, st, w, reply, &step)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
}

// execute runs one broadcast command on this rank. The bool result asks
// the world to end this residency.
func (s *Session) execute(ctx context.Context, c *comm.Comm, st *sim.Simulation, w wireCmd, reply chan cmdResult, step *int) (bool, error) {
	switch w.Op {
	case opStep:
		// The fair-share gate bounds how many sessions step at once;
		// rank 0 holds the slot for the whole collective batch (the other
		// ranks are blocked inside the exchange until rank 0 proceeds, so
		// one slot covers the whole world).
		if c.Rank() == 0 {
			if err := s.srv.gate.acquire(ctx, s.Tenant); err != nil {
				// The batch never started; tell the peers to skip it.
				answer(reply, cmdResult{err: err})
				if _, berr := c.BcastErr(0, int64(0)); berr != nil {
					return false, berr
				}
				return false, nil
			}
			if _, err := c.BcastErr(0, int64(1)); err != nil {
				s.srv.gate.release()
				return false, err
			}
		} else {
			v, err := c.BcastErr(0, int64(0))
			if err != nil {
				return false, err
			}
			if admitted, _ := v.(int64); admitted == 0 {
				return false, nil
			}
		}
		_, err := st.RunCtx(ctx, w.Steps)
		// RunCtx resets the per-batch step counter on entry, so its value
		// now is exactly the number of steps this batch committed (fewer
		// than requested when interrupted at a boundary).
		*step += st.Steps()
		if c.Rank() == 0 {
			s.srv.gate.release()
		}
		interrupted := errors.Is(err, sim.ErrInterrupted)
		if err != nil && !interrupted {
			answer(reply, cmdResult{err: err})
			return false, err
		}
		// Batch-granular durability: with checkpointing configured, every
		// committed batch lands a coordinated set, so a supervised respawn
		// after a world death loses at most the in-flight batch.
		if !interrupted && s.scenario.Resilience.CheckpointEvery > 0 {
			if _, err := st.WriteCheckpointSet(s.dir, *step); err != nil {
				answer(reply, cmdResult{err: err})
				return false, err
			}
		}
		hash, herr := st.FieldHash()
		if herr != nil {
			answer(reply, cmdResult{err: herr})
			return false, herr
		}
		if c.Rank() == 0 {
			s.mu.Lock()
			if !interrupted {
				s.stepped += w.Steps
			}
			s.lastHash = hash
			s.mu.Unlock()
			res := cmdResult{hash: hash}
			if interrupted {
				res.err = sim.ErrInterrupted
			}
			answer(reply, res)
		}
		return false, nil
	case opSteer:
		st.SetForce(w.Force)
		if err := c.BarrierErr(); err != nil {
			return false, err
		}
		answer(reply, cmdResult{})
		return false, nil
	case opHash:
		hash, err := st.FieldHash()
		if err != nil {
			answer(reply, cmdResult{err: err})
			return false, err
		}
		if c.Rank() == 0 {
			s.mu.Lock()
			s.lastHash = hash
			s.mu.Unlock()
		}
		answer(reply, cmdResult{hash: hash})
		return false, nil
	case opSnapshot:
		err := scenario.WriteBlockVTK(w.Dir, st)
		// Frame manifests list a complete frame or nothing: every rank
		// finishes writing before rank 0 reads the directory.
		if berr := c.BarrierErr(); berr != nil {
			return false, berr
		}
		if err != nil {
			answer(reply, cmdResult{err: err})
			return false, err
		}
		if c.Rank() == 0 {
			files, lerr := listFrame(w.Dir)
			answer(reply, cmdResult{files: files, err: lerr})
		}
		return false, nil
	case opSuspend:
		if _, err := st.WriteCheckpointSet(s.dir, w.Step); err != nil {
			answer(reply, cmdResult{err: err})
			return false, err
		}
		answer(reply, cmdResult{})
		return true, nil
	case opDestroy:
		answer(reply, cmdResult{})
		return true, nil
	default:
		err := fmt.Errorf("serve: unknown command op %d", w.Op)
		answer(reply, cmdResult{err: err})
		return false, err
	}
}

// answer replies to the HTTP layer; only rank 0 carries a reply channel.
func answer(reply chan cmdResult, r cmdResult) {
	if reply != nil {
		reply <- r
	}
}

func listFrame(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".vtk" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	return files, nil
}

// send routes one command to the session's rank-0 loop and waits for the
// reply. It fails fast when the session is not resident.
func (s *Session) send(ctx context.Context, w wireCmd) (cmdResult, error) {
	s.mu.Lock()
	if s.state != StateReady && s.state != StateStepping {
		state := s.state
		s.mu.Unlock()
		return cmdResult{}, fmt.Errorf("serve: session %s is %s", s.ID, state)
	}
	cmds, done := s.cmds, s.worldDone
	s.mu.Unlock()

	cmd := command{wire: w, reply: make(chan cmdResult, 1)}
	select {
	case cmds <- cmd:
	case <-done:
		return cmdResult{}, fmt.Errorf("serve: session %s world exited", s.ID)
	case <-ctx.Done():
		return cmdResult{}, context.Cause(ctx)
	}
	select {
	case r := <-cmd.reply:
		return r, r.err
	case <-done:
		return cmdResult{}, fmt.Errorf("serve: session %s world exited", s.ID)
	}
}
