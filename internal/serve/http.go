package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"walberla/internal/scenario"
	"walberla/internal/sim"
)

// Handler builds the daemon's HTTP surface (see docs/SERVE.md):
//
//	POST   /v1/sessions              create from a scenario document
//	GET    /v1/sessions              list all sessions
//	GET    /v1/sessions/{id}         one session's status
//	POST   /v1/sessions/{id}/step    advance {"steps": n}
//	POST   /v1/sessions/{id}/steer   set the body force {"force": [x,y,z]}
//	POST   /v1/sessions/{id}/snapshot  write a VTK frame, return its manifest
//	POST   /v1/sessions/{id}/suspend   spill to a checkpoint set
//	POST   /v1/sessions/{id}/resume    revive bit-identically
//	DELETE /v1/sessions/{id}         destroy
//	GET    /v1/healthz               liveness + per-session health counts
//
// When the server was built with a MetricsServer, its /metrics endpoints
// are mounted on the same mux.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]any{"sessions": s.List()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, 200, sess.info())
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/steer", s.handleSteer)
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		frame, files, err := s.Snapshot(r.Context(), r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, 200, map[string]any{"frame": frame, "files": files})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/suspend", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Suspend(r.Context(), id); err != nil {
			writeErr(w, err)
			return
		}
		writeInfo(w, s, id)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Resume(r.Context(), id); err != nil {
			writeErr(w, err)
			return
		}
		writeInfo(w, s, id)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Destroy(r.Context(), r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, 200, map[string]any{"destroyed": true})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, s.Health())
	})
	if s.cfg.Metrics != nil {
		mux.Handle("/metrics", s.cfg.Metrics)
		mux.Handle("/metrics/", s.cfg.Metrics)
	}
	return mux
}

// CreateRequest is the POST /v1/sessions body: the scenario document
// itself, optionally wrapped with a tenant for fair-share accounting.
type CreateRequest struct {
	Tenant   string          `json:"tenant,omitempty"`
	Scenario json.RawMessage `json:"scenario"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, &APIError{Status: 400, Err: err})
		return
	}
	var req CreateRequest
	// Accept both the envelope and a bare scenario document.
	if err := json.Unmarshal(body, &req); err != nil || len(req.Scenario) == 0 {
		req = CreateRequest{Scenario: body}
	}
	sc, err := scenario.Parse(req.Scenario)
	if err != nil {
		writeErr(w, &APIError{Status: 400, Err: err})
		return
	}
	sess, err := s.Create(sc, req.Tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 201, sess.info())
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Steps int `json:"steps"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, &APIError{Status: 400, Err: fmt.Errorf("serve: bad step request: %w", err)})
		return
	}
	hash, stepped, err := s.Step(r.Context(), r.PathValue("id"), req.Steps)
	if errors.Is(err, sim.ErrInterrupted) {
		writeJSON(w, 200, map[string]any{"steps": stepped, "interrupted": true})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, map[string]any{"steps": stepped, "hash": fmt.Sprintf("%016x", hash)})
}

func (s *Server) handleSteer(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Force [3]float64 `json:"force"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, &APIError{Status: 400, Err: fmt.Errorf("serve: bad steer request: %w", err)})
		return
	}
	if err := s.Steer(r.Context(), r.PathValue("id"), req.Force); err != nil {
		writeErr(w, err)
		return
	}
	writeInfo(w, s, r.PathValue("id"))
}

func writeInfo(w http.ResponseWriter, s *Server, id string) {
	sess, err := s.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, sess.info())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, err error) {
	status := 500
	var api *APIError
	if errors.As(err, &api) {
		status = api.Status
	}
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
