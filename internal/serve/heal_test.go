package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"walberla/internal/scenario"
	"walberla/internal/testutil"
)

// faultyScenario is the serve-test cavity with batch-granular durability
// and a deterministic rank crash injected at the given step.
func faultyScenario(t *testing.T, steps, crashRank, crashStep int) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Parse([]byte(fmt.Sprintf(`{
		"version": 1,
		"name": "serve-heal-test",
		"geometry": {"example": "cavity"},
		"lattice": {},
		"resolution": {"grid": [2, 1, 1], "cells_per_block": [4, 4, 4]},
		"collision": {"tau": 0.65},
		"physics": {"force": [0, 0, 0], "initial_velocity": [0, 0, 0]},
		"parallel": {"ranks": 2},
		"transport": {},
		"resilience": {"checkpoint_every": 2, "mode": "shrink"},
		"faults": {"seed": 9, "crashes": [{"rank": %d, "step": %d}]},
		"telemetry": {},
		"run": {"steps": %d}
	}`, crashRank, crashStep, steps)))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSupervisedRespawnHTTP kills a session's world with an injected rank
// crash mid-batch and drives the whole repair through the HTTP surface:
// the failed batch reports an error, the supervisor respawns the world
// from the last committed batch checkpoint, the session surfaces
// healing → degraded with the absorbed failure counted, /v1/healthz
// aggregates it, and the remaining steps produce the exact fault-free
// hash.
func TestSupervisedRespawnHTTP(t *testing.T) {
	testutil.CheckLeaks(t)
	const total = 6
	// Fault-free reference from the library path: same cavity, no faults.
	want, err := scenario.Execute(context.Background(), testScenario(t, total), scenario.ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
		return resp.StatusCode, out
	}

	code, out := post("/v1/sessions", map[string]any{
		"tenant":   "chaos",
		"scenario": json.RawMessage(mustJSON(t, faultyScenario(t, total, 1, 3))),
	})
	if code != 201 {
		t.Fatalf("create → %d %v", code, out)
	}
	id := fmt.Sprint(out["id"])
	if out["health"] != string(HealthHealthy) {
		t.Fatalf("fresh session health = %v, want healthy", out["health"])
	}

	// Batch 1 (steps 1–2) commits a checkpoint set before the crash step.
	if code, out = post("/v1/sessions/"+id+"/step", map[string]any{"steps": 2}); code != 200 {
		t.Fatalf("first batch → %d %v", code, out)
	}

	// Batch 2 hits the injected crash of rank 1 at step 3: the batch
	// fails, the world dies, and the supervisor takes over.
	if code, out = post("/v1/sessions/"+id+"/step", map[string]any{"steps": 2}); code == 200 {
		t.Fatalf("crashed batch succeeded: %v", out)
	}

	// The supervisor respawns from the batch-1 set; wait for ready+degraded.
	var in Info
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get(t, ts.URL+"/v1/sessions/"+id)), &in); err != nil {
			t.Fatal(err)
		}
		if in.State == StateReady && in.Health == HealthDegraded {
			break
		}
		if in.State == StateFailed {
			t.Fatalf("session failed instead of healing: %+v", in)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session did not heal: %+v", in)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if in.FailuresAbsorbed != 1 {
		t.Errorf("failures absorbed = %d, want 1", in.FailuresAbsorbed)
	}
	if in.WorldSize != 2 {
		t.Errorf("world size after respawn = %d, want 2", in.WorldSize)
	}
	if in.Steps != 2 {
		t.Errorf("respawned at step %d, want 2 (the last committed batch)", in.Steps)
	}

	// The aggregate health endpoint counts the degraded session and the
	// absorbed failure.
	var health HealthSummary
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/v1/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Sessions[string(HealthDegraded)] != 1 || health.FailuresAbsorbed != 1 {
		t.Errorf("healthz = %+v, want ok with one degraded session and one absorbed failure", health)
	}

	// The respawned world runs clean (fault schedules describe one
	// incarnation) and finishes bit-identically to the fault-free run.
	code, out = post("/v1/sessions/"+id+"/step", map[string]any{"steps": total - 2})
	if code != 200 {
		t.Fatalf("post-heal batch → %d %v", code, out)
	}
	if got, wantHash := fmt.Sprint(out["hash"]), fmt.Sprintf("%016x", want.Hash); got != wantHash {
		t.Errorf("post-heal hash %s, want fault-free %s", got, wantHash)
	}
	if got := fmt.Sprint(out["steps"]); got != fmt.Sprint(total) {
		t.Errorf("steps after heal = %s, want %d", got, total)
	}
}

// TestHealthzEmpty: a fresh daemon reports ok with no sessions.
func TestHealthzEmpty(t *testing.T) {
	testutil.CheckLeaks(t)
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	var health HealthSummary
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/v1/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || len(health.Sessions) != 0 || health.FailuresAbsorbed != 0 {
		t.Errorf("healthz = %+v, want ok and empty", health)
	}
}
