package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestGateFairShare: with one slot and two tenants — one flooding the
// gate, one submitting a single request — the freed slot alternates
// between tenants, so the single request is served after at most one
// batch of the flooder, not after the flooder's whole queue.
func TestGateFairShare(t *testing.T) {
	g := newGate(1)
	if err := g.acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	grab := func(tenant string) {
		defer wg.Done()
		if err := g.acquire(context.Background(), tenant); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
		g.release()
	}
	// Queue the hog's backlog first, then the small tenant.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go grab("hog")
	}
	time.Sleep(20 * time.Millisecond) // the backlog is queued
	wg.Add(1)
	go grab("small")
	time.Sleep(20 * time.Millisecond)

	g.release() // hand the held slot to the queue
	wg.Wait()

	pos := -1
	for i, tenant := range order {
		if tenant == "small" {
			pos = i
		}
	}
	if pos < 0 || pos > 1 {
		t.Errorf("small tenant served at position %d of %v — round-robin broken", pos, order)
	}
}

// TestGateCancelledWaiter: a waiter abandoning the queue neither leaks a
// slot nor wedges the ring.
func TestGateCancelledWaiter(t *testing.T) {
	g := newGate(1)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx, "b") }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled acquire returned nil")
	}
	g.release()
	// The slot must be free again.
	done := make(chan struct{})
	go func() {
		if err := g.acquire(context.Background(), "c"); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("slot lost after a cancelled waiter")
	}
}
