// Package vascular generates synthetic coronary-artery-tree geometries.
//
// The paper evaluates on a human coronary tree extracted from a computed
// tomography angiography dataset, which is not publicly available. This
// package substitutes a procedural equivalent: a recursively bifurcating
// tube tree whose radii obey Murray's law (r_parent^3 = sum r_child^3) and
// whose branches shrink and spread with controlled randomness. The result
// reproduces the geometric properties the paper's pipeline is sensitive
// to — a sparse tubular domain covering well under a percent of its
// bounding box, branching structure causing block-level load imbalance,
// and unambiguously colored inflow (root) and outflow (leaf) surfaces.
package vascular

import (
	"math"
	"math/rand"

	"walberla/internal/blockforest"
	"walberla/internal/distance"
	"walberla/internal/mesh"
)

// Params controls tree generation. The zero value is not valid; use
// DefaultParams as a starting point.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// Depth is the number of bifurcation generations (segments = 2^(d+1)-1).
	Depth int
	// RootRadius is the radius of the root vessel.
	RootRadius float64
	// LengthFactor scales segment length relative to its radius
	// (anatomically vessels run ~10-40 radii between bifurcations).
	LengthFactor float64
	// MurrayExponent is the exponent of Murray's law; 3 is classic.
	MurrayExponent float64
	// Asymmetry in [0, 0.4): flow split imbalance between siblings.
	Asymmetry float64
	// SpreadAngle is the mean bifurcation half-angle in radians.
	SpreadAngle float64
	// Jitter in [0, 1): relative random perturbation of angles/lengths.
	Jitter float64
	// TubeSegments is the circumferential mesh resolution per tube.
	TubeSegments int
}

// DefaultParams returns parameters producing a 4-generation tree with
// roughly coronary-like proportions.
func DefaultParams() Params {
	return Params{
		Seed:           1,
		Depth:          4,
		RootRadius:     0.05,
		LengthFactor:   12,
		MurrayExponent: 3,
		Asymmetry:      0.15,
		SpreadAngle:    0.55,
		Jitter:         0.3,
		TubeSegments:   12,
	}
}

// Segment is one straight vessel segment of the tree.
type Segment struct {
	P0, P1 [3]float64
	Radius float64
	Level  int
	IsRoot bool
	IsLeaf bool
}

// Length returns the segment length.
func (s Segment) Length() float64 { return mesh.Norm(mesh.Sub(s.P1, s.P0)) }

// Volume returns the cylinder volume of the segment.
func (s Segment) Volume() float64 { return math.Pi * s.Radius * s.Radius * s.Length() }

// Tree is a generated vascular tree.
type Tree struct {
	Params   Params
	Segments []Segment
}

// Generate builds the tree deterministically from the parameters.
func Generate(p Params) *Tree {
	if p.Depth < 0 || p.RootRadius <= 0 || p.LengthFactor <= 0 {
		panic("vascular: invalid parameters")
	}
	if p.TubeSegments < 3 {
		p.TubeSegments = 12
	}
	if p.MurrayExponent <= 0 {
		p.MurrayExponent = 3
	}
	r := rand.New(rand.NewSource(p.Seed))
	t := &Tree{Params: p}
	root := Segment{
		P0:     [3]float64{0, 0, 0},
		P1:     [3]float64{0, 0, p.RootRadius * p.LengthFactor},
		Radius: p.RootRadius,
		IsRoot: true,
	}
	t.grow(root, [3]float64{0, 0, 1}, 0, r)
	return t
}

// grow appends the segment and recurses into its two children.
func (t *Tree) grow(seg Segment, dir [3]float64, level int, r *rand.Rand) {
	p := t.Params
	seg.Level = level
	seg.IsLeaf = level == p.Depth
	t.Segments = append(t.Segments, seg)
	if seg.IsLeaf {
		return
	}
	// Murray's law: split the flow q into q1 + q2 with asymmetry, then
	// r_i = r * q_i^(1/m) with m the Murray exponent.
	asym := p.Asymmetry * (1 + p.Jitter*(r.Float64()-0.5))
	q1 := 0.5 + asym
	q2 := 1 - q1
	r1 := seg.Radius * math.Pow(q1, 1/p.MurrayExponent)
	r2 := seg.Radius * math.Pow(q2, 1/p.MurrayExponent)

	// Branching plane: a random unit vector perpendicular to dir.
	perp := perpendicular(dir, r)
	// Larger branch deviates less (optimal bifurcation geometry trend).
	a1 := p.SpreadAngle * (1 - asym) * (1 + p.Jitter*(r.Float64()-0.5))
	a2 := p.SpreadAngle * (1 + asym) * (1 + p.Jitter*(r.Float64()-0.5))
	d1 := rotate(dir, perp, a1)
	d2 := rotate(dir, perp, -a2)

	for i, child := range []struct {
		radius float64
		dir    [3]float64
	}{{r1, d1}, {r2, d2}} {
		length := child.radius * p.LengthFactor * (1 + p.Jitter*(r.Float64()-0.5))
		// Start slightly inside the parent end so the tube union overlaps
		// and the junction has no gap.
		start := mesh.Sub(seg.P1, mesh.Scale(dir, 0.5*seg.Radius))
		end := mesh.Add(start, mesh.Scale(child.dir, length))
		t.grow(Segment{P0: start, P1: end, Radius: child.radius}, child.dir, level+1, r)
		_ = i
	}
}

// perpendicular returns a random unit vector orthogonal to d.
func perpendicular(d [3]float64, r *rand.Rand) [3]float64 {
	ref := [3]float64{1, 0, 0}
	if math.Abs(d[0]) > 0.9 {
		ref = [3]float64{0, 1, 0}
	}
	u := mesh.Normalize(mesh.Cross(d, ref))
	w := mesh.Normalize(mesh.Cross(d, u))
	phi := 2 * math.Pi * r.Float64()
	return mesh.Add(mesh.Scale(u, math.Cos(phi)), mesh.Scale(w, math.Sin(phi)))
}

// rotate rotates v around the unit axis by the given angle (Rodrigues).
func rotate(v, axis [3]float64, angle float64) [3]float64 {
	c, s := math.Cos(angle), math.Sin(angle)
	term1 := mesh.Scale(v, c)
	term2 := mesh.Scale(mesh.Cross(axis, v), s)
	term3 := mesh.Scale(axis, mesh.Dot(axis, v)*(1-c))
	return mesh.Normalize(mesh.Add(mesh.Add(term1, term2), term3))
}

// Mesh returns the merged colored triangle mesh of all segments: the root
// inlet cap is colored inflow, leaf outlet caps outflow, everything else
// wall. The merged mesh is intended for visualization and file export; for
// voxelization use SDF, which treats the tree as a union of watertight
// tubes.
func (t *Tree) Mesh() *mesh.Mesh {
	parts := make([]*mesh.Mesh, len(t.Segments))
	for i, s := range t.Segments {
		parts[i] = segmentMesh(s, t.Params.TubeSegments)
	}
	return mesh.Merge(parts...)
}

func segmentMesh(s Segment, tubeSegments int) *mesh.Mesh {
	c0, c1 := mesh.ColorWall, mesh.ColorWall
	if s.IsRoot {
		c0 = mesh.ColorInflow
	}
	if s.IsLeaf {
		c1 = mesh.ColorOutflow
	}
	return mesh.NewTube(s.P0, s.P1, s.Radius, tubeSegments, c0, c1)
}

// SDF builds the signed distance description of the tree as the union of
// its capped tube segments.
func (t *Tree) SDF() (*distance.Union, error) {
	fields := make([]distance.SDF, len(t.Segments))
	for i, s := range t.Segments {
		f, err := distance.NewField(segmentMesh(s, t.Params.TubeSegments))
		if err != nil {
			return nil, err
		}
		fields[i] = f
	}
	return distance.NewUnion(fields...), nil
}

// Bounds returns the bounding box of the tree including vessel radii.
func (t *Tree) Bounds() blockforest.AABB {
	b := blockforest.AABB{
		Min: [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	for _, s := range t.Segments {
		for _, p := range [][3]float64{s.P0, s.P1} {
			for d := 0; d < 3; d++ {
				b.Min[d] = math.Min(b.Min[d], p[d]-s.Radius)
				b.Max[d] = math.Max(b.Max[d], p[d]+s.Radius)
			}
		}
	}
	return b
}

// TotalVolume returns the summed segment volume (overlaps double-counted).
func (t *Tree) TotalVolume() float64 {
	var v float64
	for _, s := range t.Segments {
		v += s.Volume()
	}
	return v
}

// FillFraction estimates the fraction of the bounding box volume covered
// by the tree: the paper's coronary dataset covers about 0.3 % of its
// axis-aligned bounding box. The cylinder-volume sum over the box volume
// is an upper-bound estimate (junction overlaps are small).
func (t *Tree) FillFraction() float64 {
	return t.TotalVolume() / t.Bounds().Volume()
}

// Leaves returns the number of terminal segments.
func (t *Tree) Leaves() int {
	n := 0
	for _, s := range t.Segments {
		if s.IsLeaf {
			n++
		}
	}
	return n
}
