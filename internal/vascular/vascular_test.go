package vascular

import (
	"math"
	"testing"

	"walberla/internal/mesh"
)

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	a := Generate(p)
	b := Generate(p)
	if len(a.Segments) != len(b.Segments) {
		t.Fatal("same seed produced different segment counts")
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("segment %d differs between identical seeds", i)
		}
	}
	p.Seed = 2
	c := Generate(p)
	same := true
	for i := range a.Segments {
		if a.Segments[i] != c.Segments[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trees")
	}
}

func TestTreeTopology(t *testing.T) {
	p := DefaultParams()
	p.Depth = 3
	tr := Generate(p)
	want := 1<<(p.Depth+1) - 1 // full binary tree
	if len(tr.Segments) != want {
		t.Errorf("segments = %d, want %d", len(tr.Segments), want)
	}
	if tr.Leaves() != 1<<p.Depth {
		t.Errorf("leaves = %d, want %d", tr.Leaves(), 1<<p.Depth)
	}
	roots := 0
	for _, s := range tr.Segments {
		if s.IsRoot {
			roots++
		}
		if s.Level < 0 || s.Level > p.Depth {
			t.Errorf("segment level %d out of range", s.Level)
		}
		if s.IsLeaf != (s.Level == p.Depth) {
			t.Error("leaf flag inconsistent with level")
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d, want 1", roots)
	}
}

// Murray's law: the sum of child radii cubed equals the parent radius
// cubed (exactly, by construction, up to the q1+q2=1 split).
func TestMurraysLaw(t *testing.T) {
	p := DefaultParams()
	p.Depth = 2
	p.Jitter = 0 // exact check without angle jitter on the split
	tr := Generate(p)
	// Segments are appended root-first depth-first: children of segment i
	// follow it; reconstruct parent-child radii via levels.
	type stackEntry struct{ idx int }
	// Verify: for every internal segment, find its two children as the
	// next segments at level+1 in DFS order.
	var verify func(i int) int // returns next unvisited index
	verify = func(i int) int {
		s := tr.Segments[i]
		next := i + 1
		if s.IsLeaf {
			return next
		}
		c1 := next
		next = verify(c1)
		c2 := next
		next = verify(c2)
		sum := math.Pow(tr.Segments[c1].Radius, 3) + math.Pow(tr.Segments[c2].Radius, 3)
		if math.Abs(sum-math.Pow(s.Radius, 3)) > 1e-12 {
			t.Errorf("Murray violation at %d: %v vs %v", i, sum, math.Pow(s.Radius, 3))
		}
		return next
	}
	if end := verify(0); end != len(tr.Segments) {
		t.Fatalf("DFS covered %d of %d segments", end, len(tr.Segments))
	}
}

func TestRadiiShrinkWithLevel(t *testing.T) {
	tr := Generate(DefaultParams())
	maxByLevel := map[int]float64{}
	for _, s := range tr.Segments {
		if s.Radius > maxByLevel[s.Level] {
			maxByLevel[s.Level] = s.Radius
		}
	}
	for l := 1; l <= tr.Params.Depth; l++ {
		if maxByLevel[l] >= maxByLevel[l-1] {
			t.Errorf("level %d max radius %v not below level %d (%v)",
				l, maxByLevel[l], l-1, maxByLevel[l-1])
		}
	}
}

// The tree must be sparse in its bounding box, like the paper's coronary
// dataset (~0.3 % fill).
func TestSparsity(t *testing.T) {
	p := DefaultParams()
	p.Depth = 5
	tr := Generate(p)
	fill := tr.FillFraction()
	if fill > 0.05 {
		t.Errorf("fill fraction %v, want < 0.05", fill)
	}
	if fill <= 0 {
		t.Errorf("fill fraction %v, want > 0", fill)
	}
}

func TestMeshColoring(t *testing.T) {
	p := DefaultParams()
	p.Depth = 2
	m := Generate(p).Mesh()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for tri := range m.Triangles {
		switch m.TriangleColor(tri) {
		case mesh.ColorInflow:
			in++
		case mesh.ColorOutflow:
			out++
		}
	}
	if in != p.TubeSegments {
		t.Errorf("inflow triangles = %d, want %d (one root cap)", in, p.TubeSegments)
	}
	if out != 4*p.TubeSegments {
		t.Errorf("outflow triangles = %d, want %d (four leaf caps)", out, 4*p.TubeSegments)
	}
}

func TestSDFClassification(t *testing.T) {
	p := DefaultParams()
	p.Depth = 1
	tr := Generate(p)
	sdf, err := tr.SDF()
	if err != nil {
		t.Fatal(err)
	}
	// Center of the root segment is inside.
	root := tr.Segments[0]
	mid := mesh.Scale(mesh.Add(root.P0, root.P1), 0.5)
	if !sdf.Inside(mid) {
		t.Error("root axis midpoint not inside")
	}
	if sdf.Signed(mid) >= 0 {
		t.Error("phi at axis not negative")
	}
	// The junction region (parent end) must be inside despite the caps:
	// children overlap into the parent.
	if !sdf.Inside(root.P1) {
		t.Error("junction point not inside the union")
	}
	// A point far outside.
	b := tr.Bounds()
	far := [3]float64{b.Max[0] + 1, b.Max[1] + 1, b.Max[2] + 1}
	if sdf.Inside(far) || sdf.Signed(far) <= 0 {
		t.Error("far point classified inside")
	}
	// Bounds must contain all segments including radius.
	for _, s := range tr.Segments {
		for d := 0; d < 3; d++ {
			if s.P0[d]-s.Radius < b.Min[d]-1e-12 || s.P1[d]+s.Radius > b.Max[d]+1e-12 {
				// Component-wise check is conservative; only flag clear violations.
				if s.P0[d] < b.Min[d] || s.P1[d] > b.Max[d] {
					t.Errorf("segment escapes bounds on axis %d", d)
				}
			}
		}
	}
}

func TestSDFColors(t *testing.T) {
	p := DefaultParams()
	p.Depth = 1
	p.Jitter = 0
	tr := Generate(p)
	sdf, err := tr.SDF()
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Segments[0]
	// Slightly below the root inlet: nearest surface is the inflow cap.
	probe := mesh.Sub(root.P0, [3]float64{0, 0, 0.1 * root.Radius})
	if got := sdf.ClosestTriangleColor(probe); got != mesh.ColorInflow {
		t.Errorf("inlet color = %v, want inflow", got)
	}
	// Beyond a leaf tip: outflow.
	var leaf Segment
	for _, s := range tr.Segments {
		if s.IsLeaf {
			leaf = s
			break
		}
	}
	dir := mesh.Normalize(mesh.Sub(leaf.P1, leaf.P0))
	probe = mesh.Add(leaf.P1, mesh.Scale(dir, 0.1*leaf.Radius))
	if got := sdf.ClosestTriangleColor(probe); got != mesh.ColorOutflow {
		t.Errorf("leaf tip color = %v, want outflow", got)
	}
}
