// Package boundary implements the boundary conditions used in the paper:
// no-slip bounce-back, velocity bounce-back, and pressure anti-bounce-back
// (Ginzburg et al., link-wise formulation).
//
// The conditions integrate with the fused stream-pull kernels as a
// pre-stream sweep: for every link from a boundary cell b into a fluid
// cell x = b + e_d, the sweep writes into src(b, d) exactly the value the
// stream-pull update of x will read, so that the kernel needs no boundary
// logic at all. Walls are located halfway between the boundary and fluid
// cell centers, the standard link bounce-back placement.
package boundary

import (
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Config carries the macroscopic values imposed by the boundary conditions
// of one block.
type Config struct {
	// WallVelocity is the velocity of VelocityBounce cells (inflow or
	// moving wall). Ignored if VelocityAt is set.
	WallVelocity [3]float64
	// Density is the density imposed by PressureBounce cells; zero means
	// the reference density 1. Ignored if DensityAt is set.
	Density float64
	// VelocityAt, if non-nil, returns the wall velocity per boundary cell,
	// enabling spatially varying inflow profiles. It must be a pure
	// function of the coordinates: Apply evaluates it once per link when
	// compiling the sweep, not on every time step.
	VelocityAt func(x, y, z int) (ux, uy, uz float64)
	// DensityAt, if non-nil, returns the imposed density per boundary cell.
	// Like VelocityAt it must be a pure function of the coordinates.
	DensityAt func(x, y, z int) float64
}

// link is one boundary link: boundary cell (bx,by,bz), direction d pointing
// from the boundary cell into the adjacent fluid cell.
type link struct {
	bx, by, bz int32
	d          lattice.Direction
}

// Sweep applies the boundary conditions of one block. It precomputes the
// boundary link lists from the flag field at construction; Apply then runs
// in time proportional to the number of boundary links.
//
// On first use against a field, Apply compiles the link lists into linear
// indices of that field's storage — by-direction array positions for SoA,
// interleaved positions for AoS — so the steady-state boundary pass is a
// flat gather/scatter with no per-link coordinate arithmetic. The compiled
// form is tied to the field's shape and layout (both stable across the
// double-buffer Swap of the time loop) and is rebuilt transparently if a
// differently shaped field is passed.
type Sweep struct {
	stencil *lattice.Stencil
	flags   *field.FlagField
	cfg     Config

	noSlip   []link
	velocity []link
	pressure []link

	comp *compiledLinks

	// scratch holds the Q PDFs of one fluid cell for the pressure
	// condition's moment computation, allocated once so Apply stays free
	// of per-call heap allocations. Each block owns its Sweep and Apply
	// runs on one worker at a time, so a single scratch buffer suffices.
	scratch []float64
}

// compiledLinks is the link lists lowered to linear indices of one
// concrete field shape. dst is the boundary slot written, src the fluid
// slot read (the opposite direction at the neighbor across the link).
type compiledLinks struct {
	layout            field.Layout
	nx, ny, nz, ghost int

	nsDst, nsSrc []int32

	vDst, vSrc []int32
	vAdd       []float64 // momentum correction, constant per link

	pDst, pSrc []int32
	pCell      []int32   // fluid cell index for the moment gather
	pC2WR      []float64 // 2 w_d rho_w, constant per link
	pCx        []float64
	pCy        []float64
	pCz        []float64
}

// NewSweep scans the flag field (including its ghost layer, where domain
// walls commonly live) and builds the link lists for all boundary cells
// adjacent to fluid cells.
func NewSweep(s *lattice.Stencil, flags *field.FlagField, cfg Config) *Sweep {
	bs := &Sweep{stencil: s, flags: flags, cfg: cfg}
	if bs.cfg.Density == 0 {
		bs.cfg.Density = 1.0
	}
	g := flags.Ghost
	for z := -g; z < flags.Nz+g; z++ {
		for y := -g; y < flags.Ny+g; y++ {
			for x := -g; x < flags.Nx+g; x++ {
				ct := flags.Get(x, y, z)
				if !ct.IsBoundary() {
					continue
				}
				for a := 0; a < s.Q; a++ {
					cx, cy, cz := s.Cx[a], s.Cy[a], s.Cz[a]
					if cx == 0 && cy == 0 && cz == 0 {
						continue
					}
					nx, ny, nz := x+cx, y+cy, z+cz
					if nx < 0 || nx >= flags.Nx || ny < 0 || ny >= flags.Ny || nz < 0 || nz >= flags.Nz {
						continue // fluid neighbors are interior cells only
					}
					if flags.Get(nx, ny, nz) != field.Fluid {
						continue
					}
					l := link{int32(x), int32(y), int32(z), lattice.Direction(a)}
					switch ct {
					case field.NoSlip:
						bs.noSlip = append(bs.noSlip, l)
					case field.VelocityBounce:
						bs.velocity = append(bs.velocity, l)
					case field.PressureBounce:
						bs.pressure = append(bs.pressure, l)
					}
				}
			}
		}
	}
	return bs
}

// Links returns the number of boundary links per condition, useful for
// reporting and testing.
func (bs *Sweep) Links() (noSlip, velocity, pressure int) {
	return len(bs.noSlip), len(bs.velocity), len(bs.pressure)
}

// compile lowers the link lists to linear indices of the given field. The
// per-cell velocity and density hooks are evaluated here — they are
// functions of the (static) geometry only, so their contribution to each
// link is a constant.
func (bs *Sweep) compile(src *field.PDFField) *compiledLinks {
	s := bs.stencil
	c := &compiledLinks{
		layout: src.Layout,
		nx:     src.Nx, ny: src.Ny, nz: src.Nz, ghost: src.Ghost,
	}
	c.nsDst = make([]int32, len(bs.noSlip))
	c.nsSrc = make([]int32, len(bs.noSlip))
	for i, l := range bs.noSlip {
		d := l.d
		fx, fy, fz := int(l.bx)+s.Cx[d], int(l.by)+s.Cy[d], int(l.bz)+s.Cz[d]
		c.nsDst[i] = int32(src.Index(int(l.bx), int(l.by), int(l.bz), d))
		c.nsSrc[i] = int32(src.Index(fx, fy, fz, s.Inv[d]))
	}
	c.vDst = make([]int32, len(bs.velocity))
	c.vSrc = make([]int32, len(bs.velocity))
	c.vAdd = make([]float64, len(bs.velocity))
	for i, l := range bs.velocity {
		d := l.d
		fx, fy, fz := int(l.bx)+s.Cx[d], int(l.by)+s.Cy[d], int(l.bz)+s.Cz[d]
		c.vDst[i] = int32(src.Index(int(l.bx), int(l.by), int(l.bz), d))
		c.vSrc[i] = int32(src.Index(fx, fy, fz, s.Inv[d]))
		var ux, uy, uz float64
		if bs.cfg.VelocityAt != nil {
			ux, uy, uz = bs.cfg.VelocityAt(int(l.bx), int(l.by), int(l.bz))
		} else {
			ux, uy, uz = bs.cfg.WallVelocity[0], bs.cfg.WallVelocity[1], bs.cfg.WallVelocity[2]
		}
		eu := float64(s.Cx[d])*ux + float64(s.Cy[d])*uy + float64(s.Cz[d])*uz
		c.vAdd[i] = 6.0 * s.W[d] * eu
	}
	c.pDst = make([]int32, len(bs.pressure))
	c.pSrc = make([]int32, len(bs.pressure))
	c.pCell = make([]int32, len(bs.pressure))
	c.pC2WR = make([]float64, len(bs.pressure))
	c.pCx = make([]float64, len(bs.pressure))
	c.pCy = make([]float64, len(bs.pressure))
	c.pCz = make([]float64, len(bs.pressure))
	for i, l := range bs.pressure {
		d := l.d
		fx, fy, fz := int(l.bx)+s.Cx[d], int(l.by)+s.Cy[d], int(l.bz)+s.Cz[d]
		c.pDst[i] = int32(src.Index(int(l.bx), int(l.by), int(l.bz), d))
		c.pSrc[i] = int32(src.Index(fx, fy, fz, s.Inv[d]))
		c.pCell[i] = int32(src.CellIndex(fx, fy, fz))
		rhoW := bs.cfg.Density
		if bs.cfg.DensityAt != nil {
			rhoW = bs.cfg.DensityAt(int(l.bx), int(l.by), int(l.bz))
		}
		c.pC2WR[i] = 2.0 * s.W[d] * rhoW
		c.pCx[i] = float64(s.Cx[d])
		c.pCy[i] = float64(s.Cy[d])
		c.pCz[i] = float64(s.Cz[d])
	}
	return c
}

// matches reports whether the compiled form addresses fields shaped like f.
func (c *compiledLinks) matches(f *field.PDFField) bool {
	return c.layout == f.Layout && c.nx == f.Nx && c.ny == f.Ny && c.nz == f.Nz && c.ghost == f.Ghost
}

// Apply writes the boundary values into src so that the subsequent
// stream-pull kernel sweep realizes the boundary conditions. src must hold
// the post-collision PDFs of the previous time step.
func (bs *Sweep) Apply(src *field.PDFField) {
	s := bs.stencil
	if bs.comp == nil || !bs.comp.matches(src) {
		bs.comp = bs.compile(src)
	}
	c := bs.comp
	data := src.Data()

	// No-slip bounce-back: the population leaving the fluid cell toward
	// the wall returns unchanged into the opposite direction:
	//   src(b, d) = src(b + e_d, dbar).
	for i, dst := range c.nsDst {
		data[dst] = data[c.nsSrc[i]]
	}

	// Velocity bounce-back: bounce-back plus a momentum correction for the
	// moving wall,
	//   src(b, d) = src(b + e_d, dbar) + 6 w_d rho0 (e_d . u_w).
	for i, dst := range c.vDst {
		data[dst] = data[c.vSrc[i]] + c.vAdd[i]
	}

	// Pressure anti-bounce-back: imposes the density rho_w; the velocity
	// entering the symmetric equilibrium part is taken from the adjacent
	// fluid cell (first-order extrapolation to the wall),
	//   src(b, d) = -src(b + e_d, dbar)
	//               + 2 w_d rho_w (1 + 4.5 (e_d . u)^2 - 1.5 u^2).
	if len(c.pDst) > 0 && bs.scratch == nil {
		bs.scratch = make([]float64, s.Q)
	}
	tmp := bs.scratch
	// The moment gather is linear in the direction index for both layouts:
	// AoS interleaves directions at the cell (stride 1), SoA spaces them by
	// the per-direction array length.
	gatherStride := 1
	cellScale := s.Q
	if c.layout == field.SoA {
		gatherStride = src.AllocatedCells()
		cellScale = 1
	}
	for i, dst := range c.pDst {
		base := int(c.pCell[i]) * cellScale
		for a := 0; a < s.Q; a++ {
			tmp[a] = data[base+a*gatherStride]
		}
		_, ux, uy, uz := s.Moments(tmp)
		eu := c.pCx[i]*ux + c.pCy[i]*uy + c.pCz[i]*uz
		usq := 1.5 * (ux*ux + uy*uy + uz*uz)
		sym := c.pC2WR[i] * (1.0 + 4.5*eu*eu - usq)
		data[dst] = -data[c.pSrc[i]] + sym
	}
}

// MarkBox marks the six faces of the ghost layer of a flag field with the
// given cell types, a convenience for closed-box scenarios such as the
// lid-driven cavity. Order: W, E, S, N, B, T. Interior cells are marked
// Fluid.
func MarkBox(flags *field.FlagField, types [6]field.CellType) {
	flags.FillInterior(field.Fluid)
	g := flags.Ghost
	for z := -g; z < flags.Nz+g; z++ {
		for y := -g; y < flags.Ny+g; y++ {
			for x := -g; x < flags.Nx+g; x++ {
				interior := x >= 0 && x < flags.Nx && y >= 0 && y < flags.Ny && z >= 0 && z < flags.Nz
				if interior {
					continue
				}
				var t field.CellType
				switch {
				case x < 0:
					t = types[lattice.FaceW]
				case x >= flags.Nx:
					t = types[lattice.FaceE]
				case y < 0:
					t = types[lattice.FaceS]
				case y >= flags.Ny:
					t = types[lattice.FaceN]
				case z < 0:
					t = types[lattice.FaceB]
				default:
					t = types[lattice.FaceT]
				}
				flags.Set(x, y, z, t)
			}
		}
	}
}
