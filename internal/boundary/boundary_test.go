package boundary

import (
	"math"
	"testing"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
)

func TestMarkBoxAndLinkCounts(t *testing.T) {
	s := lattice.D3Q19()
	fl := field.NewFlagField(4, 4, 4, 1)
	MarkBox(fl, [6]field.CellType{
		field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.VelocityBounce,
	})
	if fl.Count(field.Fluid) != 64 {
		t.Fatalf("fluid cells = %d, want 64", fl.Count(field.Fluid))
	}
	bs := NewSweep(s, fl, Config{WallVelocity: [3]float64{0.1, 0, 0}})
	noSlip, vel, press := bs.Links()
	if press != 0 {
		t.Errorf("pressure links = %d, want 0", press)
	}
	if vel == 0 || noSlip == 0 {
		t.Errorf("expected both no-slip (%d) and velocity (%d) links", noSlip, vel)
	}
	// Every link of the lid: the lid is the +z ghost plane; each of the
	// 16 lid cells above the fluid sees 5 directions into the interior
	// except where the target cell is outside -> count equals the number
	// of (boundary cell, dir) pairs hitting interior fluid.
	want := 0
	for z := -1; z < 5; z++ {
		for y := -1; y < 5; y++ {
			for x := -1; x < 5; x++ {
				if fl.Get(x, y, z) != field.VelocityBounce {
					continue
				}
				for a := 0; a < s.Q; a++ {
					nx, ny, nz := x+s.Cx[a], y+s.Cy[a], z+s.Cz[a]
					if (s.Cx[a] != 0 || s.Cy[a] != 0 || s.Cz[a] != 0) &&
						nx >= 0 && nx < 4 && ny >= 0 && ny < 4 && nz >= 0 && nz < 4 {
						want++
					}
				}
			}
		}
	}
	if vel != want {
		t.Errorf("velocity links = %d, want %d", vel, want)
	}
}

func TestNoSlipReflection(t *testing.T) {
	s := lattice.D3Q19()
	fl := field.NewFlagField(3, 3, 3, 1)
	MarkBox(fl, [6]field.CellType{
		field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip,
	})
	bs := NewSweep(s, fl, Config{})
	src := field.NewPDFField(s, 3, 3, 3, 1, field.AoS)
	// Unique values everywhere.
	v := 1.0
	for z := -1; z < 4; z++ {
		for y := -1; y < 4; y++ {
			for x := -1; x < 4; x++ {
				for a := 0; a < s.Q; a++ {
					src.Set(x, y, z, lattice.Direction(a), v)
					v++
				}
			}
		}
	}
	bs.Apply(src)
	// For the wall cell at (-1,1,1) the direction E points into fluid
	// (0,1,1): the sweep must have copied src(0,1,1,W) into src(-1,1,1,E).
	got := src.Get(-1, 1, 1, lattice.E)
	want := src.Get(0, 1, 1, lattice.W)
	if got != want {
		t.Errorf("no-slip link value = %v, want %v", got, want)
	}
}

func TestVelocityBounceMomentumCorrection(t *testing.T) {
	s := lattice.D3Q19()
	fl := field.NewFlagField(3, 3, 3, 1)
	MarkBox(fl, [6]field.CellType{
		field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.VelocityBounce,
	})
	u := 0.08
	bs := NewSweep(s, fl, Config{WallVelocity: [3]float64{u, 0, 0}})
	src := field.NewPDFField(s, 3, 3, 3, 1, field.AoS)
	src.FillEquilibrium(1, 0, 0, 0)
	bs.Apply(src)
	// Lid cell (1,1,3), direction BW=(-1,0,-1) points into fluid (0,1,2).
	// e_d . u_w = -u.
	want := src.Get(0, 1, 2, lattice.TE) + 6.0*s.W[lattice.BW]*(-u)
	got := src.Get(1, 1, 3, lattice.BW)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("velocity link value = %v, want %v", got, want)
	}
	// Direction B=(0,0,-1) is orthogonal to the wall motion: pure
	// bounce-back without correction.
	want = src.Get(1, 1, 2, lattice.T)
	got = src.Get(1, 1, 3, lattice.B)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("orthogonal link value = %v, want %v", got, want)
	}
}

// A resting fluid enclosed by resting walls (no-slip and pressure at the
// reference density) must remain exactly at rest.
func TestRestingStateStable(t *testing.T) {
	s := lattice.D3Q19()
	const n = 6
	fl := field.NewFlagField(n, n, n, 1)
	MarkBox(fl, [6]field.CellType{
		field.NoSlip, field.PressureBounce, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip,
	})
	bs := NewSweep(s, fl, Config{Density: 1.0})
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	k := kernels.NewD3Q19TRT(trt)
	src := field.NewPDFField(s, n, n, n, 1, field.AoS)
	dst := src.CopyShape()
	src.FillEquilibrium(1, 0, 0, 0)
	for step := 0; step < 50; step++ {
		bs.Apply(src)
		k.Sweep(src, dst, fl)
		field.Swap(src, dst)
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				rho, ux, uy, uz := src.Moments(x, y, z)
				if math.Abs(rho-1) > 1e-12 || math.Abs(ux) > 1e-12 || math.Abs(uy) > 1e-12 || math.Abs(uz) > 1e-12 {
					t.Fatalf("cell (%d,%d,%d) drifted: rho=%v u=(%v,%v,%v)", x, y, z, rho, ux, uy, uz)
				}
			}
		}
	}
}

// fillPeriodicGhostsXY copies the interior layers periodically in x and y
// only; z ghosts (the walls) are left to the boundary sweep.
func fillPeriodicGhostsXY(f *field.PDFField) {
	nx, ny := f.Nx, f.Ny
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	for z := 0; z < f.Nz; z++ {
		for y := -1; y < ny+1; y++ {
			for x := -1; x < nx+1; x++ {
				if x >= 0 && x < nx && y >= 0 && y < ny {
					continue
				}
				sx, sy := wrap(x, nx), wrap(y, ny)
				for a := 0; a < f.Stencil.Q; a++ {
					f.Set(x, y, z, lattice.Direction(a), f.Get(sx, sy, z, lattice.Direction(a)))
				}
			}
		}
	}
}

// Plane Couette flow: plate at the bottom at rest, lid at the top moving
// with velocity U in x, periodic in x and y. The steady solution is the
// exact linear profile u_x(z) = U (z + 1/2) / Nz with link bounce-back
// walls located half a cell outside the first/last fluid cell layer.
func TestCouetteFlowLinearProfile(t *testing.T) {
	s := lattice.D3Q19()
	const nx, ny, nzc = 4, 4, 8
	const U = 0.05
	fl := field.NewFlagField(nx, ny, nzc, 1)
	fl.FillInterior(field.Fluid)
	// Bottom and top ghost planes only; x/y ghosts stay Outside (they are
	// filled periodically each step, never pulled as boundaries).
	for y := -1; y < ny+1; y++ {
		for x := -1; x < nx+1; x++ {
			fl.Set(x, y, -1, field.NoSlip)
			fl.Set(x, y, nzc, field.VelocityBounce)
		}
	}
	bs := NewSweep(s, fl, Config{WallVelocity: [3]float64{U, 0, 0}})
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	k := kernels.NewD3Q19TRT(trt)
	src := field.NewPDFField(s, nx, ny, nzc, 1, field.AoS)
	dst := src.CopyShape()
	src.FillEquilibrium(1, 0, 0, 0)
	for step := 0; step < 4000; step++ {
		fillPeriodicGhostsXY(src)
		bs.Apply(src)
		k.Sweep(src, dst, fl)
		field.Swap(src, dst)
	}
	for z := 0; z < nzc; z++ {
		want := U * (float64(z) + 0.5) / float64(nzc)
		_, ux, uy, uz := src.Moments(1, 2, z)
		if math.Abs(ux-want) > 1e-6 {
			t.Errorf("z=%d: ux = %v, want %v", z, ux, want)
		}
		if math.Abs(uy) > 1e-9 || math.Abs(uz) > 1e-9 {
			t.Errorf("z=%d: transverse flow uy=%v uz=%v", z, uy, uz)
		}
	}
}

// An overpressure outlet must raise the mean density of the adjacent
// fluid: qualitative check of the anti-bounce-back sign convention.
func TestPressureBoundaryRaisesDensity(t *testing.T) {
	s := lattice.D3Q19()
	const n = 6
	fl := field.NewFlagField(n, n, n, 1)
	MarkBox(fl, [6]field.CellType{
		field.PressureBounce, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip,
	})
	bs := NewSweep(s, fl, Config{Density: 1.05})
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	k := kernels.NewD3Q19TRT(trt)
	src := field.NewPDFField(s, n, n, n, 1, field.AoS)
	dst := src.CopyShape()
	src.FillEquilibrium(1, 0, 0, 0)
	for step := 0; step < 200; step++ {
		bs.Apply(src)
		k.Sweep(src, dst, fl)
		field.Swap(src, dst)
	}
	mass := src.TotalMass()
	if mass <= float64(n*n*n) {
		t.Errorf("total mass %v did not increase above %v under overpressure", mass, n*n*n)
	}
}

func TestPerCellCallbacks(t *testing.T) {
	s := lattice.D3Q19()
	fl := field.NewFlagField(3, 3, 3, 1)
	MarkBox(fl, [6]field.CellType{
		field.VelocityBounce, field.PressureBounce, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip,
	})
	velCalled, denCalled := false, false
	bs := NewSweep(s, fl, Config{
		VelocityAt: func(x, y, z int) (float64, float64, float64) {
			velCalled = true
			return 0.01, 0, 0
		},
		DensityAt: func(x, y, z int) float64 {
			denCalled = true
			return 1.0
		},
	})
	src := field.NewPDFField(s, 3, 3, 3, 1, field.AoS)
	src.FillEquilibrium(1, 0, 0, 0)
	bs.Apply(src)
	if !velCalled || !denCalled {
		t.Errorf("callbacks used: velocity=%v density=%v, want both", velCalled, denCalled)
	}
}
