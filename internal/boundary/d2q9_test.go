package boundary

import (
	"math"
	"testing"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
)

// The boundary handling and the generic kernel are stencil-agnostic; this
// test runs a two-dimensional lid-driven cavity with the D2Q9 model (one
// cell thick in z) and checks the 2-D cavity physics: a primary vortex
// with forward flow under the lid and return flow at the bottom, exact
// mass conservation, and a stable velocity magnitude.
func TestD2Q9LidDrivenCavity(t *testing.T) {
	s := lattice.D2Q9()
	const n = 16
	const lidU = 0.05
	fl := field.NewFlagField(n, n, 1, 1)
	fl.FillInterior(field.Fluid)
	// Walls around the x/y perimeter; the +y side is the moving lid. The
	// z ghost layers stay Outside — D2Q9 has no z velocities and never
	// pulls from them.
	for x := -1; x <= n; x++ {
		fl.Set(x, -1, 0, field.NoSlip)
		fl.Set(x, n, 0, field.VelocityBounce)
	}
	for y := 0; y < n; y++ {
		fl.Set(-1, y, 0, field.NoSlip)
		fl.Set(n, y, 0, field.NoSlip)
	}
	bs := NewSweep(s, fl, Config{WallVelocity: [3]float64{lidU, 0, 0}})
	srt := collide.NewSRT(0.7)
	k := kernels.NewGeneric(s, srt)
	src := field.NewPDFField(s, n, n, 1, 1, field.AoS)
	dst := src.CopyShape()
	src.FillEquilibrium(1, 0, 0, 0)

	massBefore := src.TotalMass()
	for step := 0; step < 4000; step++ {
		bs.Apply(src)
		k.Sweep(src, dst, fl)
		field.Swap(src, dst)
	}
	if math.Abs(src.TotalMass()-massBefore) > 1e-8 {
		t.Errorf("mass drifted: %v -> %v", massBefore, src.TotalMass())
	}
	// Primary vortex: forward flow just under the lid, reversed at the
	// bottom, and a nonzero vertical component near the side walls.
	_, topU, _, _ := src.Moments(n/2, n-2, 0)
	_, bottomU, _, _ := src.Moments(n/2, 1, 0)
	if topU <= 0 {
		t.Errorf("flow under lid %v, want positive", topU)
	}
	if bottomU >= 0 {
		t.Errorf("bottom return flow %v, want negative", bottomU)
	}
	_, _, sideV, _ := src.Moments(n-2, n/2, 0)
	if math.Abs(sideV) < 1e-6 {
		t.Errorf("no vertical circulation near the wall: v = %v", sideV)
	}
	// Stability: all velocities bounded well below lattice speed.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			_, ux, uy, uz := src.Moments(x, y, 0)
			if v := math.Sqrt(ux*ux + uy*uy + uz*uz); v > 2*lidU {
				t.Fatalf("velocity %v at (%d,%d) exceeds 2x lid speed", v, x, y)
			}
			if math.Abs(uz) > 1e-14 {
				t.Fatalf("2-D flow developed z velocity %v", uz)
			}
		}
	}
}

// The same cavity with D3Q19 (one lid, thin slab, periodic-free) must
// behave consistently: checks the generic kernel across stencils.
func TestGenericKernelD3Q27Cavity(t *testing.T) {
	s := lattice.D3Q27()
	const n = 8
	fl := field.NewFlagField(n, n, n, 1)
	MarkBox(fl, [6]field.CellType{
		field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.VelocityBounce,
	})
	bs := NewSweep(s, fl, Config{WallVelocity: [3]float64{0.05, 0, 0}})
	srt := collide.NewSRT(0.7)
	k := kernels.NewGeneric(s, srt)
	src := field.NewPDFField(s, n, n, n, 1, field.AoS)
	dst := src.CopyShape()
	src.FillEquilibrium(1, 0, 0, 0)
	massBefore := src.TotalMass()
	for step := 0; step < 500; step++ {
		bs.Apply(src)
		k.Sweep(src, dst, fl)
		field.Swap(src, dst)
	}
	if math.Abs(src.TotalMass()-massBefore) > 1e-8 {
		t.Errorf("D3Q27 mass drifted: %v -> %v", massBefore, src.TotalMass())
	}
	_, topU, _, _ := src.Moments(n/2, n/2, n-1)
	if topU <= 0 {
		t.Errorf("D3Q27 cavity: no lid-driven flow (u=%v)", topU)
	}
}
