package core

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/mesh"
	"walberla/internal/sim"
)

func TestLidDrivenCavityRuns(t *testing.T) {
	p := LidDrivenCavity([3]int{2, 2, 2}, [3]int{6, 6, 6}, 0.05, 4)
	m, err := p.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalCells != 8*216 {
		t.Errorf("TotalCells = %d, want %d", m.TotalCells, 8*216)
	}
	if m.MLUPS <= 0 {
		t.Error("no progress measured")
	}
}

// The cavity develops the primary vortex: flow near the lid follows the
// lid, flow near the bottom runs backwards.
func TestCavityVortex(t *testing.T) {
	p := LidDrivenCavity([3]int{1, 1, 1}, [3]int{12, 12, 12}, 0.08, 1)
	var topU, bottomU float64
	err := p.RunEach(3000, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		bd := s.Blocks[0]
		_, topU, _, _ = bd.Src.Moments(6, 6, 10)
		_, bottomU, _, _ = bd.Src.Moments(6, 6, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if topU <= 0 {
		t.Errorf("near-lid flow %v, want positive (dragged by lid)", topU)
	}
	if bottomU >= 0 {
		t.Errorf("near-bottom flow %v, want negative (return flow)", bottomU)
	}
}

func TestChannelFlowWithObstacle(t *testing.T) {
	p := &Problem{
		Grid:          [3]int{2, 1, 1},
		CellsPerBlock: [3]int{8, 8, 8},
		Tau:           0.9,
		Boundary:      sim.Config{}.Boundary, // zero value; set below
		Ranks:         2,
		SetupFlags:    ChannelFlags([3]int{6, 3, 3}, [3]int{8, 5, 5}),
	}
	p.Boundary.WallVelocity = [3]float64{0.02, 0, 0}
	p.Boundary.Density = 1.0
	var mu sync.Mutex
	obstacleOK := true
	var maxU float64
	err := p.RunEach(300, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		mu.Lock()
		defer mu.Unlock()
		for _, bd := range s.Blocks {
			// Obstacle cells must be marked non-fluid in the owning block.
			base := bd.Block.Coord[0] * 8
			for z := 0; z < 8; z++ {
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						gx := base + x
						inObstacle := gx >= 6 && gx < 8 && y >= 3 && y < 5 && z >= 3 && z < 5
						isFluid := bd.Flags.Get(x, y, z) == field.Fluid
						if inObstacle && isFluid {
							obstacleOK = false
						}
						if isFluid {
							_, ux, uy, uz := bd.Src.Moments(x, y, z)
							if v := math.Sqrt(ux*ux + uy*uy + uz*uz); v > maxU {
								maxU = v
							}
						}
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !obstacleOK {
		t.Error("obstacle cells marked fluid")
	}
	if maxU < 1e-4 {
		t.Errorf("no flow developed: max |u| = %v", maxU)
	}
	if maxU > 0.3 {
		t.Errorf("flow unstable: max |u| = %v", maxU)
	}
}

func TestGeometryProblem(t *testing.T) {
	sphere, err := distance.NewField(mesh.NewSphere([3]float64{0, 0, 0}, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Geometry:            sphere,
		Dx:                  0.1,
		CellsPerBlock:       [3]int{8, 8, 8},
		Kernel:              sim.KernelSparse,
		Ranks:               2,
		UseGraphPartitioner: true,
	}
	m, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalFluidCells == 0 {
		t.Fatal("no fluid cells in voxelized sphere")
	}
	// The 3x3x3 block grid keeps barely-touching boundary blocks, so the
	// overall fill is well below the sphere/bounding-box ratio of pi/6.
	ff := m.FluidFraction()
	if ff <= 0.15 || ff >= 0.9 {
		t.Errorf("sphere fluid fraction %v implausible", ff)
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := (&Problem{Geometry: nil}).Run(1); err == nil {
		t.Error("empty problem accepted")
	}
	sphere, _ := distance.NewField(mesh.NewSphere([3]float64{0, 0, 0}, 1, 1))
	if _, err := (&Problem{Geometry: sphere, CellsPerBlock: [3]int{8, 8, 8}}).Run(1); err == nil {
		t.Error("geometry problem without Dx accepted")
	}
}

// The façade passes stencil and per-cell initial state through: a D2Q9
// periodic sheet with a sinusoidal shear decays viscously.
func TestProblemStencilAndInitialState(t *testing.T) {
	const n = 16
	p := &Problem{
		Grid:          [3]int{2, 1, 1},
		CellsPerBlock: [3]int{n / 2, n, 1},
		Periodic:      [3]bool{true, true, false},
		Stencil:       lattice.D2Q9(),
		Kernel:        sim.KernelGenericSRT,
		Tau:           0.8,
		InitialState: func(x, y, z int) (float64, float64, float64, float64) {
			return 1, 0.02 * math.Sin(2*math.Pi*float64(y)/n), 0, 0
		},
		Ranks: 2,
		SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
		},
	}
	var mu sync.Mutex
	var amp0, amp1 float64
	err := p.RunEach(100, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		var localMax float64
		for _, bd := range s.Blocks {
			for y := 0; y < n; y++ {
				for x := 0; x < bd.Src.Nx; x++ {
					_, ux, _, _ := bd.Src.Moments(x, y, 0)
					if a := math.Abs(ux); a > localMax {
						localMax = a
					}
				}
			}
		}
		g := c.AllreduceFloat64(localMax, comm.Max[float64])
		if c.Rank() == 0 {
			mu.Lock()
			amp0, amp1 = 0.02, g
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Viscous decay of the shear wave: exp(-nu k^2 t).
	nu := (0.8 - 0.5) / 3.0
	k := 2 * math.Pi / float64(n)
	want := amp0 * math.Exp(-nu*k*k*100)
	if math.Abs(amp1-want)/want > 0.03 {
		t.Errorf("shear wave amplitude %v, analytic %v", amp1, want)
	}
}

func TestMeasureKernelMLUPS(t *testing.T) {
	res := MeasureKernelMLUPS(sim.KernelSplitTRT, 16, 2, 3)
	if res.MLUPS <= 0 {
		t.Errorf("MLUPS = %v", res.MLUPS)
	}
	if res.Cells != 4096 || res.Threads != 2 || res.Steps != 3 {
		t.Errorf("metadata wrong: %+v", res)
	}
}

func TestMeasureSparseStrategies(t *testing.T) {
	res := MeasureSparseStrategies(24, 0.2, 2, 1)
	if len(res) != 3 {
		t.Fatalf("%d strategies, want 3", len(res))
	}
	for _, r := range res {
		if r.MFLUPS <= 0 {
			t.Errorf("%s: MFLUPS = %v", r.Strategy, r.MFLUPS)
		}
		if r.FluidFraction < 0.1 || r.FluidFraction > 0.4 {
			t.Errorf("%s: fill %v far from request 0.2", r.Strategy, r.FluidFraction)
		}
		if r.MFLUPS > r.MLUPS+1e-9 {
			// MFLUPS counts fewer cells than MLUPS on sparse blocks.
			t.Errorf("%s: MFLUPS %v exceeds MLUPS %v", r.Strategy, r.MFLUPS, r.MLUPS)
		}
	}
}

func TestTubularFlagsFillFraction(t *testing.T) {
	for _, fill := range []float64{0.1, 0.3, 1.0} {
		fl := tubularFlags(32, fill, 3)
		got := fl.FluidFraction()
		if fill == 1.0 && got != 1.0 {
			t.Errorf("full fill got %v", got)
		}
		if fill < 1 && (got < fill*0.8 || got > fill*1.8) {
			t.Errorf("requested %v, got %v", fill, got)
		}
	}
}

func TestMaxThreads(t *testing.T) {
	if MaxThreads() < 1 {
		t.Error("MaxThreads < 1")
	}
}

func TestMeasureStreamBandwidth(t *testing.T) {
	bw := MeasureStreamBandwidth(8, 1)
	if bw <= 0.1 || bw > 10000 {
		t.Errorf("implausible bandwidth %v GiB/s", bw)
	}
	roof := HostRooflineMLUPS(bw)
	if roof <= 0 {
		t.Errorf("roofline %v", roof)
	}
	// The paper's arithmetic: 37.3 GiB/s -> 87.8 MLUPS.
	if math.Abs(HostRooflineMLUPS(37.3)-87.8) > 0.1 {
		t.Errorf("roofline arithmetic broken: %v", HostRooflineMLUPS(37.3))
	}
}
