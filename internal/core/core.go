// Package core is the high-level façade of the framework: it wires the
// setup pipeline, the distributed block forest, and the simulation driver
// into a single Problem description that runs SPMD over the in-process
// communicator — the API the examples and command line tools build on.
package core

import (
	"fmt"
	"sync"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
)

// Problem describes a complete simulation: either a dense box domain
// (Grid x CellsPerBlock cells with walls or periodic boundaries) or a
// complex geometry given as a signed distance field, to be voxelized with
// boundary conditions from surface colors.
type Problem struct {
	// Geometry, if non-nil, selects the complex-geometry path: the block
	// grid is derived from the geometry bounds and Dx, blocks outside the
	// domain are discarded, and blocks are voxelized per rank.
	Geometry distance.SDF
	// Dx is the lattice spacing for geometry problems.
	Dx float64

	// Grid is the block grid for dense problems.
	Grid [3]int
	// CellsPerBlock is the per-block cell grid (both paths).
	CellsPerBlock [3]int
	// Periodic marks periodic axes of dense problems.
	Periodic [3]bool

	// Stencil, Kernel, Tau, Magic, Boundary, Force and InitialVelocity
	// configure the solver as in sim.Config (nil Stencil means D3Q19).
	Stencil         *lattice.Stencil
	Kernel          sim.KernelChoice
	Layout          sim.LayoutChoice
	Tau             float64
	Magic           float64
	Boundary        boundary.Config
	Force           [3]float64
	InitialRho      float64
	InitialVelocity [3]float64
	// InitialState optionally initializes every cell individually (global
	// cell coordinates), e.g. for analytic validation flows.
	InitialState func(x, y, z int) (rho, ux, uy, uz float64)
	// SetupFlags overrides the per-block flag setup of dense problems
	// (e.g. marking a moving lid); geometry problems voxelize instead.
	SetupFlags func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField)

	// Ranks is the number of SPMD processes; zero means one.
	Ranks int
	// Workers is the intra-rank worker count for block sweeps and
	// pack/unpack (the hybrid MPI+threads mode); zero means one.
	Workers int
	// Exchange selects the ghost exchange wire format; the zero value is
	// sim.ExchangeAggregated (one message per neighbor rank per step).
	Exchange sim.ExchangeMode
	// Seed drives randomized setup stages.
	Seed int64
	// TelemetryFor, if non-nil, supplies each rank's tracer and metrics
	// registry (either may be nil) before the simulation is built, wiring
	// span tracing and counters through the run (see docs/TELEMETRY.md).
	// Called once per rank from that rank's goroutine.
	TelemetryFor func(rank int) (*telemetry.Tracer, *telemetry.Registry)
	// UseGraphPartitioner selects METIS-style balancing; Morton curve
	// otherwise.
	UseGraphPartitioner bool
	// MemoryLimitCells caps allocated cells per rank during balancing.
	MemoryLimitCells float64
}

// BuildForest constructs the balanced global forest on the calling
// goroutine (rank 0 does this before broadcasting; the scenario and
// session layers build it once and reuse it across world restarts so a
// resumed session restores onto the identical block assignment).
func (p *Problem) BuildForest() (*blockforest.SetupForest, error) {
	ranks := p.Ranks
	if ranks == 0 {
		ranks = 1
	}
	if p.Geometry != nil {
		if p.Dx <= 0 {
			return nil, fmt.Errorf("core: geometry problems need Dx > 0")
		}
		f, _, err := setup.BuildForest(p.Geometry, setup.Options{
			CellsPerBlock:       p.CellsPerBlock,
			Dx:                  p.Dx,
			Ranks:               ranks,
			MemoryLimitCells:    p.MemoryLimitCells,
			Seed:                p.Seed,
			UseGraphPartitioner: p.UseGraphPartitioner,
		})
		return f, err
	}
	for d := 0; d < 3; d++ {
		if p.Grid[d] <= 0 || p.CellsPerBlock[d] <= 0 {
			return nil, fmt.Errorf("core: dense problems need positive Grid and CellsPerBlock")
		}
	}
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{
		float64(p.Grid[0] * p.CellsPerBlock[0]),
		float64(p.Grid[1] * p.CellsPerBlock[1]),
		float64(p.Grid[2] * p.CellsPerBlock[2]),
	})
	f := blockforest.NewSetupForest(domain, p.Grid, p.CellsPerBlock, p.Periodic)
	f.BalanceMorton(ranks)
	return f, nil
}

// SimConfig assembles the sim.Config of this problem; callers that do
// not go through Run/RunEach (the session daemon) normalize it with
// Config.Validate before use.
func (p *Problem) SimConfig() sim.Config {
	cfg := sim.Config{
		Stencil:         p.Stencil,
		Kernel:          p.Kernel,
		Layout:          p.Layout,
		Tau:             p.Tau,
		Magic:           p.Magic,
		Boundary:        p.Boundary,
		Force:           p.Force,
		InitialRho:      p.InitialRho,
		InitialVelocity: p.InitialVelocity,
		InitialState:    p.InitialState,
		SetupFlags:      p.SetupFlags,
		Workers:         p.Workers,
		Exchange:        p.Exchange,
	}
	if p.Geometry != nil && cfg.SetupFlags == nil {
		cfg.SetupFlags = setup.FlagsFromSDF(p.Geometry)
	}
	return cfg
}

// Run executes the problem for the given number of time steps and returns
// the globally reduced metrics.
func (p *Problem) Run(steps int) (sim.Metrics, error) {
	var m sim.Metrics
	err := p.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, metrics sim.Metrics) {
		if c.Rank() == 0 {
			m = metrics
		}
	})
	return m, err
}

// RunEach executes the problem and invokes fn on every rank after the
// time loop, giving access to the local simulation state (for probing
// fields, writing output, or assertions in tests).
func (p *Problem) RunEach(steps int, fn func(c *comm.Comm, s *sim.Simulation, m sim.Metrics)) error {
	forest, err := p.BuildForest()
	if err != nil {
		return err
	}
	ranks := p.Ranks
	if ranks == 0 {
		ranks = 1
	}
	var mu sync.Mutex
	var firstErr error
	comm.Run(ranks, func(c *comm.Comm) {
		var in *blockforest.SetupForest
		if c.Rank() == 0 {
			in = forest
		}
		bf, err := blockforest.Distribute(c, in)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		cfg := p.SimConfig()
		if p.TelemetryFor != nil {
			cfg.Tracer, cfg.Metrics = p.TelemetryFor(c.Rank())
		}
		s, err := sim.New(c, bf, cfg)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		m, err := s.Run(steps)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		if fn != nil {
			fn(c, s, m)
		}
	})
	return firstErr
}

// LidDrivenCavity returns a ready-to-run lid-driven cavity problem: a
// closed box of grid x cells lattice cells whose +z lid moves with the
// given velocity — the scenario of the paper's dense weak scaling study.
func LidDrivenCavity(grid, cells [3]int, lidVelocity float64, ranks int) *Problem {
	return &Problem{
		Grid:          grid,
		CellsPerBlock: cells,
		Tau:           0.65,
		Boundary:      boundary.Config{WallVelocity: [3]float64{lidVelocity, 0, 0}},
		Ranks:         ranks,
		SetupFlags:    CavityFlags,
	}
}

// CavityFlags marks all domain faces no-slip except the +z lid, which
// moves (VelocityBounce).
func CavityFlags(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	flags.Fill(field.Fluid)
	for f := lattice.FaceW; f < lattice.NumFaces; f++ {
		nx, ny, nz := f.Normal()
		if b.Neighbor([3]int{nx, ny, nz}) != nil {
			continue
		}
		t := field.NoSlip
		if f == lattice.FaceT {
			t = field.VelocityBounce
		}
		sim.MarkGhostFace(flags, f, t)
	}
}

// ChannelFlags returns a setup hook for channel flow along +x: velocity
// inflow at -x, pressure outflow at +x, no-slip walls elsewhere, plus an
// optional box obstacle given in global cell coordinates.
func ChannelFlags(obstacleMin, obstacleMax [3]int) func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	return func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
		flags.Fill(field.Fluid)
		for f := lattice.FaceW; f < lattice.NumFaces; f++ {
			nx, ny, nz := f.Normal()
			if b.Neighbor([3]int{nx, ny, nz}) != nil {
				continue
			}
			t := field.NoSlip
			switch f {
			case lattice.FaceW:
				t = field.VelocityBounce
			case lattice.FaceE:
				t = field.PressureBounce
			}
			sim.MarkGhostFace(flags, f, t)
		}
		// Obstacle: mark cells of this block covered by the global box,
		// including the ghost ring so neighboring blocks see the obstacle
		// cells in their own flag fields (their boundary sweeps own the
		// links into their fluid cells).
		base := [3]int{
			b.Coord[0] * b.Cells[0],
			b.Coord[1] * b.Cells[1],
			b.Coord[2] * b.Cells[2],
		}
		g := flags.Ghost
		for z := -g; z < b.Cells[2]+g; z++ {
			for y := -g; y < b.Cells[1]+g; y++ {
				for x := -g; x < b.Cells[0]+g; x++ {
					gx, gy, gz := base[0]+x, base[1]+y, base[2]+z
					if gx >= obstacleMin[0] && gx < obstacleMax[0] &&
						gy >= obstacleMin[1] && gy < obstacleMax[1] &&
						gz >= obstacleMin[2] && gz < obstacleMax[2] {
						flags.Set(x, y, z, field.NoSlip)
					}
				}
			}
		}
	}
}
