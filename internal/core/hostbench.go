package core

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
	"walberla/internal/sim"
)

// Host-machine kernel measurements: the counterpart of the paper's
// single-node study (Figure 3) executed on whatever machine this code
// runs on. Absolute numbers depend on the host; the claims under test are
// the *ranking* of the optimization stages and the saturation behavior
// with thread count, which the petascale projections then anchor to the
// published machine parameters.

// KernelBenchResult is one measured point of the host kernel study.
type KernelBenchResult struct {
	Kernel  string
	Threads int
	Cells   int
	Steps   int
	MLUPS   float64
}

// MeasureKernelMLUPS runs the given kernel on `threads` goroutines, each
// sweeping its own dense edge^3 block for `steps` iterations, and returns
// the aggregate million lattice cell updates per second. Communication is
// excluded, matching the paper's kernel-only measurement.
func MeasureKernelMLUPS(choice sim.KernelChoice, edge, threads, steps int) KernelBenchResult {
	if threads < 1 {
		threads = 1
	}
	if steps < 1 {
		steps = 1
	}
	type worker struct {
		k        kernels.Kernel
		src, dst *field.PDFField
	}
	workers := make([]worker, threads)
	for i := range workers {
		k, err := kernels.New(kernels.Spec{Choice: choice, Tau: 0.9})
		if err != nil {
			panic(err)
		}
		src := field.NewPDFField(lattice.D3Q19(), edge, edge, edge, 1, k.Layout())
		src.FillEquilibrium(1.0, 0.02, 0.01, -0.01)
		workers[i] = worker{k: k, src: src, dst: src.CopyShape()}
	}
	// Warm up once (page faults, cache fill).
	var wg sync.WaitGroup
	run := func(iters int) time.Duration {
		start := time.Now()
		for i := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for it := 0; it < iters; it++ {
					w.k.Sweep(w.src, w.dst, nil)
					field.Swap(w.src, w.dst)
				}
			}(&workers[i])
		}
		wg.Wait()
		return time.Since(start)
	}
	run(1)
	elapsed := run(steps)
	cells := edge * edge * edge
	mlups := float64(threads) * float64(cells) * float64(steps) / elapsed.Seconds() / 1e6
	return KernelBenchResult{
		Kernel:  string(choice),
		Threads: threads,
		Cells:   cells,
		Steps:   steps,
		MLUPS:   mlups,
	}
}

// SparseBenchResult is one measured point of the sparse-strategy ablation.
type SparseBenchResult struct {
	Strategy      string
	FluidFraction float64
	MFLUPS        float64
	MLUPS         float64 // counting all traversed cells
}

// MeasureSparseStrategies benchmarks the three sparse-block strategies of
// section 4.3 on a block with a synthetic tubular fluid pattern of
// approximately the given fill fraction, returning MFLUPS per strategy.
func MeasureSparseStrategies(edge int, fill float64, steps int, seed int64) []SparseBenchResult {
	flags := tubularFlags(edge, fill, seed)
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	fluid := flags.Count(field.Fluid)
	strategies := []struct {
		name string
		k    kernels.Kernel
	}{
		{"conditional", kernels.NewSparseConditional(trt)},
		{"celllist", kernels.NewSparseCellList(trt, flags)},
		{"interval", kernels.NewSparseInterval(trt, flags)},
	}
	var out []SparseBenchResult
	for _, s := range strategies {
		k := s.k
		src := field.NewPDFField(lattice.D3Q19(), edge, edge, edge, 1, k.Layout())
		src.FillEquilibrium(1.0, 0.01, 0, 0)
		dst := src.CopyShape()
		k.Sweep(src, dst, flags) // warm up
		start := time.Now()
		for it := 0; it < steps; it++ {
			k.Sweep(src, dst, flags)
			field.Swap(src, dst)
		}
		elapsed := time.Since(start).Seconds()
		out = append(out, SparseBenchResult{
			Strategy:      s.name,
			FluidFraction: flags.FluidFraction(),
			MFLUPS:        float64(fluid) * float64(steps) / elapsed / 1e6,
			MLUPS:         float64(edge*edge*edge) * float64(steps) / elapsed / 1e6,
		})
	}
	return out
}

// tubularFlags builds a flag pattern of axis-aligned tubes filling roughly
// the requested fraction — "few but consecutive fluid lattice cells" per
// line, the structure the interval strategy is designed for. Non-fluid
// cells are NoSlip where they border fluid (handled by the kernels'
// correctness tests; for throughput measurement the type only matters as
// not-Fluid).
func tubularFlags(edge int, fill float64, seed int64) *field.FlagField {
	flags := field.NewFlagField(edge, edge, edge, 1)
	flags.Fill(field.NoSlip)
	if fill >= 1 {
		flags.FillInterior(field.Fluid)
		return flags
	}
	r := rand.New(rand.NewSource(seed))
	target := int(fill * float64(edge*edge*edge))
	placed := 0
	for placed < target {
		// A random tube along x of random radius and length.
		radius := 1 + r.Intn(edge/6+1)
		cy := r.Intn(edge)
		cz := r.Intn(edge)
		x0 := r.Intn(edge)
		length := edge/2 + r.Intn(edge/2)
		for x := x0; x < x0+length && x < edge; x++ {
			for dy := -radius; dy <= radius; dy++ {
				for dz := -radius; dz <= radius; dz++ {
					if dy*dy+dz*dz > radius*radius {
						continue
					}
					y, z := cy+dy, cz+dz
					if y < 0 || y >= edge || z < 0 || z >= edge {
						continue
					}
					if flags.Get(x, y, z) != field.Fluid {
						flags.Set(x, y, z, field.Fluid)
						placed++
					}
				}
			}
		}
	}
	return flags
}

// MaxThreads returns the host parallelism used by the benchmark sweeps.
func MaxThreads() int { return runtime.GOMAXPROCS(0) }

// MeasureStreamBandwidth measures the host's sustainable memory bandwidth
// with a copy kernel over arrays far beyond cache size, in GiB/s — the
// paper's STREAM measurement, from which its roofline bound follows
// (attainable bandwidth divided by 456 B per cell update).
func MeasureStreamBandwidth(mib int, iters int) float64 {
	if mib < 8 {
		mib = 8
	}
	if iters < 1 {
		iters = 3
	}
	n := mib * 1024 * 1024 / 8
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	copy(b, a) // warm up and fault in
	best := 0.0
	for it := 0; it < iters; it++ {
		start := time.Now()
		copy(b, a)
		elapsed := time.Since(start).Seconds()
		// copy moves 2n*8 bytes (read + write), 3x with write-allocate;
		// STREAM convention counts read + write = 16 bytes per element.
		if bw := float64(16*n) / elapsed / (1 << 30); bw > best {
			best = bw
		}
	}
	return best
}

// HostRooflineMLUPS converts a measured host bandwidth into the LBM
// roofline bound, mirroring the paper's arithmetic for the local machine.
func HostRooflineMLUPS(bandwidthGiBs float64) float64 {
	return bandwidthGiBs * (1 << 30) / 456.0 / 1e6
}
