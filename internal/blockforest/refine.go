package blockforest

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Grid refinement support. The paper: "Each initial block can be further
// subdivided into eight equally sized, smaller blocks. This process can
// be applied recursively. The resulting domain partitioning geometrically
// represents a forest of octrees ... Though this is supported in the data
// structures, our current algorithms and applications do not yet make use
// of this capability." This file reproduces exactly that status: the
// setup forest can be refined recursively, refined forests serialize to
// an extended file format, and balancing distributes refined leaves — but
// the neighborhood construction and the simulation drivers operate on
// unrefined forests only (refinement-aware algorithms are the paper's
// future work).

// ensureRefinedIndex lazily initializes the refined-leaf index.
func (f *SetupForest) ensureRefinedIndex() {
	if f.refined == nil {
		f.refined = make(map[BlockID]*SetupBlock)
	}
}

// BlockByID returns a leaf block by its octree ID: a root block (level 0)
// or a refined child.
func (f *SetupForest) BlockByID(id BlockID) *SetupBlock {
	if id.Level == 0 {
		for _, b := range f.blocks {
			if b.ID == id {
				return b
			}
		}
		return nil
	}
	return f.refined[id]
}

// RefineBlock subdivides the given leaf block into its eight octree
// children, distributing workload and memory equally, and returns them.
// The parent ceases to be a leaf. Root blocks are addressed by their grid
// coordinate through Block(); children by their BlockID.
func (f *SetupForest) RefineBlock(id BlockID) ([]*SetupBlock, error) {
	f.ensureRefinedIndex()
	var parent *SetupBlock
	if id.Level == 0 {
		parent = f.Block(f.coordOf(id))
		if parent == nil || parent.ID != id {
			return nil, fmt.Errorf("blockforest: root block %v not found", id)
		}
		delete(f.blocks, parent.Coord)
	} else {
		parent = f.refined[id]
		if parent == nil {
			return nil, fmt.Errorf("blockforest: refined block %v not found", id)
		}
		delete(f.refined, id)
	}
	children := make([]*SetupBlock, 8)
	for o := 0; o < 8; o++ {
		child := &SetupBlock{
			ID:       id.Child(o),
			Coord:    parent.Coord,
			AABB:     parent.AABB.Octant(o),
			Workload: parent.Workload / 8,
			Memory:   parent.Memory / 8,
			Rank:     parent.Rank,
		}
		f.refined[child.ID] = child
		children[o] = child
	}
	return children, nil
}

// coordOf recovers the grid coordinate of a root block from its tree
// index.
func (f *SetupForest) coordOf(id BlockID) [3]int {
	t := int(id.Tree)
	x := t % f.GridSize[0]
	t /= f.GridSize[0]
	y := t % f.GridSize[1]
	z := t / f.GridSize[1]
	return [3]int{x, y, z}
}

// MaxLevel returns the deepest refinement level of any leaf (0 for flat
// forests).
func (f *SetupForest) MaxLevel() int {
	m := 0
	for id := range f.refined {
		if int(id.Level) > m {
			m = int(id.Level)
		}
	}
	return m
}

// NumRefined returns the number of refined leaf blocks.
func (f *SetupForest) NumRefined() int { return len(f.refined) }

// AllLeaves returns every leaf block — unrefined roots and refined
// children — in deterministic order (Morton order of the root coordinate,
// then octree ID order within each tree).
func (f *SetupForest) AllLeaves() []*SetupBlock {
	out := make([]*SetupBlock, 0, len(f.blocks)+len(f.refined))
	for _, b := range f.blocks {
		out = append(out, b)
	}
	for _, b := range f.refined {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := mortonKey(out[i].Coord), mortonKey(out[j].Coord)
		if ki != kj {
			return ki < kj
		}
		return out[i].ID.Less(out[j].ID)
	})
	return out
}

// TotalLeafVolume sums the AABB volume of all leaves; refinement must
// preserve it exactly (children tile the parent).
func (f *SetupForest) TotalLeafVolume() float64 {
	var v float64
	for _, b := range f.AllLeaves() {
		v += b.AABB.Volume()
	}
	return v
}

// BalanceMortonLeaves assigns all leaves (including refined children) to
// ranks along the Morton curve by workload — the refinement-aware variant
// of BalanceMorton.
func (f *SetupForest) BalanceMortonLeaves(numRanks int) {
	leaves := f.AllLeaves()
	workloads := make([]float64, len(leaves))
	for i, b := range leaves {
		workloads[i] = b.Workload
	}
	for i, r := range AssignContiguous(workloads, numRanks) {
		leaves[i].Rank = r
	}
}

// Extended file format for refined forests ("WBF2"): like the flat format
// plus, per block, a level byte and the octree path in minimal bytes.

const refinedMagic = "WBF2"

// SaveRefined writes a (possibly refined) forest in the WBF2 format. For
// flat forests Save remains the compact choice.
func (f *SetupForest) SaveRefined(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(refinedMagic)
	for i := 0; i < 3; i++ {
		putFloat(&buf, f.Domain.Min[i])
	}
	for i := 0; i < 3; i++ {
		putFloat(&buf, f.Domain.Max[i])
	}
	for i := 0; i < 3; i++ {
		putUint(&buf, uint64(f.GridSize[i]), 4)
	}
	for i := 0; i < 3; i++ {
		putUint(&buf, uint64(f.CellsPerBlock[i]), 4)
	}
	var periodic byte
	for i := 0; i < 3; i++ {
		if f.Periodic[i] {
			periodic |= 1 << i
		}
	}
	buf.WriteByte(periodic)

	leaves := f.AllLeaves()
	maxRank, maxCoord, maxWork, maxLevel := 0, 0, uint64(0), 0
	for _, b := range leaves {
		if b.Rank > maxRank {
			maxRank = b.Rank
		}
		for i := 0; i < 3; i++ {
			if b.Coord[i] > maxCoord {
				maxCoord = b.Coord[i]
			}
		}
		if wk := uint64(b.Workload + 0.5); wk > maxWork {
			maxWork = wk
		}
		if int(b.ID.Level) > maxLevel {
			maxLevel = int(b.ID.Level)
		}
	}
	putUint(&buf, uint64(len(leaves)), 8)
	putUint(&buf, uint64(maxRank+1), 4)
	bytesCoord := minBytes(uint64(maxCoord))
	bytesRank := minBytes(uint64(maxRank))
	bytesWork := minBytes(maxWork)
	bytesPath := minBytes(1<<(3*uint(maxLevel)) - 1)
	buf.WriteByte(byte(bytesCoord))
	buf.WriteByte(byte(bytesRank))
	buf.WriteByte(byte(bytesWork))
	buf.WriteByte(byte(bytesPath))

	for _, b := range leaves {
		for i := 0; i < 3; i++ {
			putUint(&buf, uint64(b.Coord[i]), bytesCoord)
		}
		buf.WriteByte(byte(b.ID.Level))
		putUint(&buf, b.ID.Path, bytesPath)
		rank := b.Rank
		if rank < 0 {
			rank = 0
		}
		putUint(&buf, uint64(rank), bytesRank)
		putUint(&buf, uint64(b.Workload+0.5), bytesWork)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// LoadRefined reads a forest written by SaveRefined.
func LoadRefined(r io.Reader) (*SetupForest, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("blockforest: reading magic: %w", err)
	}
	if string(magic) != refinedMagic {
		return nil, fmt.Errorf("blockforest: bad refined magic %q", magic)
	}
	var domain AABB
	for i := 0; i < 3; i++ {
		v, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		domain.Min[i] = v
	}
	for i := 0; i < 3; i++ {
		v, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		domain.Max[i] = v
	}
	var grid, cells [3]int
	for i := 0; i < 3; i++ {
		v, err := getUint(r, 4)
		if err != nil {
			return nil, err
		}
		grid[i] = int(v)
	}
	for i := 0; i < 3; i++ {
		v, err := getUint(r, 4)
		if err != nil {
			return nil, err
		}
		cells[i] = int(v)
	}
	pb, err := getUint(r, 1)
	if err != nil {
		return nil, err
	}
	var periodic [3]bool
	for i := 0; i < 3; i++ {
		periodic[i] = pb>>i&1 == 1
	}
	numBlocks, err := getUint(r, 8)
	if err != nil {
		return nil, err
	}
	if _, err := getUint(r, 4); err != nil { // numRanks (informational)
		return nil, err
	}
	sizes := make([]byte, 4)
	if _, err := io.ReadFull(r, sizes); err != nil {
		return nil, err
	}
	bytesCoord, bytesRank, bytesWork, bytesPath := int(sizes[0]), int(sizes[1]), int(sizes[2]), int(sizes[3])
	for _, s := range sizes {
		if s < 1 || s > 8 {
			return nil, fmt.Errorf("blockforest: invalid field width %d", s)
		}
	}

	if grid[0] <= 0 || grid[1] <= 0 || grid[2] <= 0 {
		return nil, fmt.Errorf("blockforest: implausible refined header grid %v", grid)
	}
	f := &SetupForest{
		Domain:        domain,
		GridSize:      grid,
		CellsPerBlock: cells,
		Periodic:      periodic,
		blocks:        make(map[[3]int]*SetupBlock),
		refined:       make(map[BlockID]*SetupBlock),
	}
	for n := uint64(0); n < numBlocks; n++ {
		var c [3]int
		for i := 0; i < 3; i++ {
			v, err := getUint(r, bytesCoord)
			if err != nil {
				return nil, fmt.Errorf("blockforest: block %d: %w", n, err)
			}
			c[i] = int(v)
		}
		lvl, err := getUint(r, 1)
		if err != nil {
			return nil, err
		}
		path, err := getUint(r, bytesPath)
		if err != nil {
			return nil, err
		}
		rank, err := getUint(r, bytesRank)
		if err != nil {
			return nil, err
		}
		work, err := getUint(r, bytesWork)
		if err != nil {
			return nil, err
		}
		id := BlockID{Tree: f.treeIndex(c), Path: path, Level: uint8(lvl)}
		aabb := f.BlockAABB(c)
		// Walk the path to the leaf AABB, most significant octant first.
		for l := int(lvl) - 1; l >= 0; l-- {
			aabb = aabb.Octant(int(path >> (3 * uint(l)) & 7))
		}
		b := &SetupBlock{
			ID:       id,
			Coord:    c,
			AABB:     aabb,
			Workload: float64(work),
			Memory:   float64(cells[0]*cells[1]*cells[2]) / float64(uint64(1)<<(3*lvl)),
			Rank:     int(rank),
		}
		if lvl == 0 {
			f.blocks[c] = b
		} else {
			f.refined[id] = b
		}
	}
	return f, nil
}
