package blockforest

import (
	"bytes"
	"fmt"

	"walberla/internal/comm"
)

// Neighbor is the lightweight header a rank keeps about a block in the
// neighborhood of one of its own blocks: identity, owner and relative
// position — everything required to exchange ghost layers, and nothing
// more.
type Neighbor struct {
	ID BlockID
	// Coord is the neighbor's root grid coordinate.
	Coord [3]int
	// Offset is the direction from the owning block to the neighbor in
	// {-1,0,1}^3 (before periodic wrapping).
	Offset [3]int
	// Rank owns the neighbor block.
	Rank int
}

// Block is one block owned by this rank in the distributed forest.
type Block struct {
	ID       BlockID
	Coord    [3]int
	AABB     AABB
	Cells    [3]int
	Workload float64
	// Neighbors lists the existing blocks in the 26-neighborhood.
	Neighbors []Neighbor
}

// Neighbor returns the neighbor at the given offset, or nil if the
// neighborhood has no block there (domain boundary or removed block).
func (b *Block) Neighbor(offset [3]int) *Neighbor {
	for i := range b.Neighbors {
		if b.Neighbors[i].Offset == offset {
			return &b.Neighbors[i]
		}
	}
	return nil
}

// BlockForest is the fully distributed per-rank view of the domain
// partitioning: this rank's blocks with full data plus neighbor headers.
// Per-rank memory is proportional to the number of local blocks and their
// neighborhood only, independent of the total simulation size.
type BlockForest struct {
	Rank          int
	NumRanks      int
	Domain        AABB
	GridSize      [3]int
	CellsPerBlock [3]int
	Periodic      [3]bool

	// Blocks are the blocks assigned to this rank, in Morton order.
	Blocks []*Block

	// headerCount tracks how many remote block headers this rank stores —
	// the quantity bounded by the distributed-memory invariant.
	headerCount int
}

// Build constructs the distributed view of one rank from the global setup
// forest, retaining only this rank's blocks and their neighbor headers.
func Build(f *SetupForest, rank, numRanks int) *BlockForest {
	bf := &BlockForest{
		Rank:          rank,
		NumRanks:      numRanks,
		Domain:        f.Domain,
		GridSize:      f.GridSize,
		CellsPerBlock: f.CellsPerBlock,
		Periodic:      f.Periodic,
	}
	for _, sb := range f.Blocks() {
		if sb.Rank != rank {
			continue
		}
		b := &Block{
			ID:       sb.ID,
			Coord:    sb.Coord,
			AABB:     sb.AABB,
			Cells:    f.CellsPerBlock,
			Workload: sb.Workload,
		}
		coords, offsets := f.Neighbors(sb.Coord)
		for i, nc := range coords {
			nb := f.Block(nc)
			b.Neighbors = append(b.Neighbors, Neighbor{
				ID:     nb.ID,
				Coord:  nc,
				Offset: offsets[i],
				Rank:   nb.Rank,
			})
			bf.headerCount++
		}
		bf.Blocks = append(bf.Blocks, b)
	}
	return bf
}

// StoredHeaders returns the number of remote block headers this rank
// keeps; tests assert it depends only on the local neighborhood.
func (bf *BlockForest) StoredHeaders() int { return bf.headerCount }

// LocalCells returns the number of lattice cells allocated on this rank.
func (bf *BlockForest) LocalCells() int64 {
	per := int64(bf.CellsPerBlock[0]) * int64(bf.CellsPerBlock[1]) * int64(bf.CellsPerBlock[2])
	return per * int64(len(bf.Blocks))
}

// Distribute performs the paper's loading protocol on a communicator: rank
// 0 holds the setup forest (having built it or loaded it from file),
// serializes it into the compact binary format, broadcasts the bytes in a
// single collective, and every rank decodes the stream and keeps only its
// own part. Ranks other than 0 pass f == nil.
func Distribute(c *comm.Comm, f *SetupForest) (*BlockForest, error) {
	var payload []byte
	if c.Rank() == 0 {
		if f == nil {
			return nil, fmt.Errorf("blockforest: rank 0 must provide the setup forest")
		}
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			return nil, fmt.Errorf("blockforest: serializing forest: %w", err)
		}
		payload = buf.Bytes()
	}
	data := c.Bcast(0, payload).([]byte)
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("blockforest: rank %d decoding forest: %w", c.Rank(), err)
	}
	return Build(loaded, c.Rank(), c.Size()), nil
}
