package blockforest

import (
	"bytes"
	"math"
	"testing"
)

func refineTestForest() *SetupForest {
	return NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{2, 2, 2}),
		[3]int{2, 2, 2}, [3]int{8, 8, 8}, [3]bool{})
}

func TestRefineBlockBasics(t *testing.T) {
	f := refineTestForest()
	root := f.Block([3]int{0, 0, 0})
	root.Workload = 800
	children, err := f.RefineBlock(root.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 8 {
		t.Fatalf("%d children", len(children))
	}
	if f.NumRefined() != 8 || f.MaxLevel() != 1 {
		t.Errorf("NumRefined=%d MaxLevel=%d", f.NumRefined(), f.MaxLevel())
	}
	// The root is no longer a leaf; its coordinate slot is empty.
	if f.Block([3]int{0, 0, 0}) != nil {
		t.Error("refined root still a leaf")
	}
	// Children tile the parent volume and split the workload.
	var vol, work float64
	for _, c := range children {
		vol += c.AABB.Volume()
		work += c.Workload
		if c.ID.Parent() != root.ID {
			t.Error("child parent mismatch")
		}
		if f.BlockByID(c.ID) != c {
			t.Error("BlockByID lookup failed")
		}
	}
	if math.Abs(vol-root.AABB.Volume()) > 1e-12 {
		t.Errorf("children volume %v != parent %v", vol, root.AABB.Volume())
	}
	if math.Abs(work-800) > 1e-9 {
		t.Errorf("children workload %v != 800", work)
	}
}

func TestRefineRecursive(t *testing.T) {
	f := refineTestForest()
	root := f.Block([3]int{1, 0, 1})
	children, err := f.RefineBlock(root.ID)
	if err != nil {
		t.Fatal(err)
	}
	grand, err := f.RefineBlock(children[3].ID)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", f.MaxLevel())
	}
	// 7 unrefined roots + 7 remaining children + 8 grandchildren = 22 leaves.
	if got := len(f.AllLeaves()); got != 22 {
		t.Errorf("leaves = %d, want 22", got)
	}
	if f.TotalLeafVolume() != 8.0 {
		t.Errorf("leaf volume %v, want 8 (domain volume)", f.TotalLeafVolume())
	}
	// Grandchild AABB nested in child, child in root.
	for _, g := range grand {
		if !children[3].AABB.Intersects(g.AABB) {
			t.Error("grandchild escapes child")
		}
		c := g.AABB.Center()
		if !children[3].AABB.Contains(c) || !root.AABB.Contains(c) {
			t.Error("grandchild center outside ancestors")
		}
	}
}

func TestRefineErrors(t *testing.T) {
	f := refineTestForest()
	bogus := BlockID{Tree: 99}
	if _, err := f.RefineBlock(bogus); err == nil {
		t.Error("refining missing root accepted")
	}
	if _, err := f.RefineBlock(BlockID{Tree: 0, Path: 5, Level: 1}); err == nil {
		t.Error("refining missing child accepted")
	}
	// Double refinement of the same block fails (no longer a leaf).
	root := f.Block([3]int{0, 0, 0})
	if _, err := f.RefineBlock(root.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RefineBlock(root.ID); err == nil {
		t.Error("refining a non-leaf accepted")
	}
}

func TestBalanceMortonLeaves(t *testing.T) {
	f := refineTestForest()
	if _, err := f.RefineBlock(f.Block([3]int{0, 0, 0}).ID); err != nil {
		t.Fatal(err)
	}
	const ranks = 3
	f.BalanceMortonLeaves(ranks)
	counts := map[int]int{}
	var total, maxW float64
	per := map[int]float64{}
	for _, b := range f.AllLeaves() {
		if b.Rank < 0 || b.Rank >= ranks {
			t.Fatalf("invalid rank %d", b.Rank)
		}
		counts[b.Rank]++
		per[b.Rank] += b.Workload
		total += b.Workload
	}
	for _, w := range per {
		if w > maxW {
			maxW = w
		}
	}
	if len(counts) != ranks {
		t.Errorf("only %d ranks used", len(counts))
	}
	if maxW > 1.6*total/ranks {
		t.Errorf("imbalance: max %v vs avg %v", maxW, total/ranks)
	}
}

func TestRefinedFileRoundTrip(t *testing.T) {
	f := refineTestForest()
	c1, err := f.RefineBlock(f.Block([3]int{0, 1, 0}).ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RefineBlock(c1[6].ID); err != nil {
		t.Fatal(err)
	}
	f.BalanceMortonLeaves(4)
	var buf bytes.Buffer
	if err := f.SaveRefined(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadRefined(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fl, gl := f.AllLeaves(), g.AllLeaves()
	if len(fl) != len(gl) {
		t.Fatalf("leaf counts differ: %d vs %d", len(fl), len(gl))
	}
	for i := range fl {
		if fl[i].ID != gl[i].ID || fl[i].Rank != gl[i].Rank || fl[i].Coord != gl[i].Coord {
			t.Errorf("leaf %d: %+v vs %+v", i, fl[i], gl[i])
		}
		for d := 0; d < 3; d++ {
			if math.Abs(fl[i].AABB.Min[d]-gl[i].AABB.Min[d]) > 1e-12 ||
				math.Abs(fl[i].AABB.Max[d]-gl[i].AABB.Max[d]) > 1e-12 {
				t.Errorf("leaf %d AABB differs: %+v vs %+v", i, fl[i].AABB, gl[i].AABB)
			}
		}
	}
	if g.MaxLevel() != 2 {
		t.Errorf("restored MaxLevel = %d", g.MaxLevel())
	}
}

func TestLoadRefinedRejectsFlatMagic(t *testing.T) {
	f := refineTestForest()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRefined(&buf); err == nil {
		t.Error("flat file accepted by LoadRefined")
	}
}

func TestCoordOfRoundTrip(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{3, 4, 5}, [3]int{4, 4, 4}, [3]bool{})
	for _, b := range f.Blocks() {
		if got := f.coordOf(b.ID); got != b.Coord {
			t.Fatalf("coordOf(%v) = %v, want %v", b.ID, got, b.Coord)
		}
	}
}
