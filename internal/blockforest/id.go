package blockforest

import "fmt"

// BlockID identifies a block within the forest of octrees. A block is
// addressed by the index of its root block (the tree it belongs to) and
// the descent path from that root: three bits per refinement level
// selecting the octant. The zero value is the root block of tree 0.
//
// The ID encodes to a single uint64 with a marker bit above the path so
// that the level is recoverable, mirroring waLBerla's bit-packed block
// IDs; the compact file format then stores only the low-order bytes that
// carry information.
type BlockID struct {
	Tree  uint32 // index of the root block
	Path  uint64 // 3 bits per level, most significant level first
	Level uint8  // refinement depth below the root
}

// Child returns the ID of the given octant (0..7) one level below b.
func (b BlockID) Child(octant int) BlockID {
	if octant < 0 || octant > 7 {
		panic(fmt.Sprintf("blockforest: invalid octant %d", octant))
	}
	if b.Level >= 20 {
		panic("blockforest: refinement depth limit exceeded")
	}
	return BlockID{Tree: b.Tree, Path: b.Path<<3 | uint64(octant), Level: b.Level + 1}
}

// Parent returns the ID one level above b; calling it on a root block
// panics.
func (b BlockID) Parent() BlockID {
	if b.Level == 0 {
		panic("blockforest: root block has no parent")
	}
	return BlockID{Tree: b.Tree, Path: b.Path >> 3, Level: b.Level - 1}
}

// Octant returns the octant of b within its parent.
func (b BlockID) Octant() int {
	if b.Level == 0 {
		panic("blockforest: root block has no octant")
	}
	return int(b.Path & 7)
}

// Encode packs the ID into a uint64: tree index above a marker bit above
// the path bits. Supports up to 20 refinement levels within a tree index
// budget of 64-1-3*level bits.
func (b BlockID) Encode() uint64 {
	shift := 3 * uint(b.Level)
	return (uint64(b.Tree)<<1|1)<<shift | b.Path&(1<<shift-1)
}

// DecodeBlockID reverses Encode given the refinement level.
func DecodeBlockID(v uint64, level uint8) BlockID {
	shift := 3 * uint(level)
	marker := v >> shift
	return BlockID{
		Tree:  uint32(marker >> 1),
		Path:  v & (1<<shift - 1),
		Level: level,
	}
}

func (b BlockID) String() string {
	if b.Level == 0 {
		return fmt.Sprintf("block(%d)", b.Tree)
	}
	return fmt.Sprintf("block(%d/%o@%d)", b.Tree, b.Path, b.Level)
}

// Less orders IDs by tree, then level, then path — a total order used for
// deterministic iteration.
func (b BlockID) Less(o BlockID) bool {
	if b.Tree != o.Tree {
		return b.Tree < o.Tree
	}
	if b.Level != o.Level {
		return b.Level < o.Level
	}
	return b.Path < o.Path
}
