package blockforest

import (
	"fmt"
	"sort"
)

// Shared 2:1 grading: the one routine that turns a set of per-leaf
// refine/coarsen marks into a new, 2:1-balanced leaf set. Both the
// setup-time refinement path (SetupForest.Grade) and the runtime AMR
// re-grade controller (internal/amr) call Grade, so the invariants —
// octet-complete coarsening, 2:1 balance across all 26 neighbor
// directions, exact volume conservation — are enforced in exactly one
// place.

// Mark is a per-leaf refinement vote fed into Grade.
type Mark int8

const (
	// MarkKeep leaves the block at its current level.
	MarkKeep Mark = 0
	// MarkRefine splits the block into its eight children (unless it is
	// already at the maximum level).
	MarkRefine Mark = 1
	// MarkCoarsen votes to merge the block into its parent; the merge
	// happens only if all eight siblings are leaves and all vote to
	// coarsen (octet-complete coarsening).
	MarkCoarsen Mark = -1
)

// Leaf is the lightweight leaf descriptor Grade operates on: enough to
// identify the block in the octree and on the root grid, plus the rank
// currently owning it. Runtime AMR replicates the full leaf list on
// every rank so re-grade decisions are computed identically everywhere.
type Leaf struct {
	ID    BlockID
	Coord [3]int // root-tree grid coordinate
	Rank  int
}

// Level returns the leaf's refinement level.
func (l Leaf) Level() int { return int(l.ID.Level) }

// LevelIndex returns the block's index on its level's grid: level ℓ
// subdivides every root tree into 2^ℓ blocks per axis, so the level grid
// spans GridSize·2^ℓ cells. The index follows the octree path from the
// root coordinate, using the AABB.Octant bit convention (bit d of an
// octant selects the upper half of axis d).
func LevelIndex(coord [3]int, id BlockID) [3]int {
	idx := coord
	for l := int(id.Level) - 1; l >= 0; l-- {
		oct := int(id.Path >> (3 * uint(l)) & 7)
		for d := 0; d < 3; d++ {
			idx[d] = idx[d]<<1 | (oct >> d & 1)
		}
	}
	return idx
}

// lkey addresses a block region by level and level-grid index.
type lkey struct {
	level int
	idx   [3]int
}

// graded is the mutable working set of one Grade run.
type graded struct {
	grid     [3]int
	periodic [3]bool
	leaves   map[lkey]Leaf
}

func (g *graded) key(l Leaf) lkey {
	return lkey{level: l.Level(), idx: LevelIndex(l.Coord, l.ID)}
}

// neighbor resolves the level-ℓ region adjacent to idx in direction off,
// honoring periodic wrap. ok is false outside a non-periodic boundary.
func (g *graded) neighbor(level int, idx, off [3]int) (n [3]int, ok bool) {
	for d := 0; d < 3; d++ {
		ext := g.grid[d] << uint(level)
		n[d] = idx[d] + off[d]
		if n[d] < 0 || n[d] >= ext {
			if !g.periodic[d] {
				return n, false
			}
			n[d] = ((n[d] % ext) + ext) % ext
		}
	}
	return n, true
}

// covering finds the leaf covering the level-ℓ region idx at level ℓ or
// coarser. Regions outside the forest (geometry-trimmed trees) have no
// covering leaf.
func (g *graded) covering(level int, idx [3]int) (Leaf, int, bool) {
	for lv := level; lv >= 0; lv-- {
		shift := uint(level - lv)
		k := lkey{level: lv, idx: [3]int{idx[0] >> shift, idx[1] >> shift, idx[2] >> shift}}
		if l, ok := g.leaves[k]; ok {
			return l, lv, true
		}
	}
	return Leaf{}, 0, false
}

// split replaces a leaf with its eight children (children inherit the
// rank until the next balancing pass reassigns them).
func (g *graded) split(l Leaf) {
	delete(g.leaves, g.key(l))
	for o := 0; o < 8; o++ {
		c := Leaf{ID: l.ID.Child(o), Coord: l.Coord, Rank: l.Rank}
		g.leaves[g.key(c)] = c
	}
}

// Grade applies marks to a leaf set and returns the new leaf set,
// re-graded under 2:1 balance:
//
//  1. every MarkRefine leaf below maxLevel splits into its 8 children;
//  2. a MarkCoarsen octet (all 8 siblings present as leaves, all marked)
//     merges into its parent;
//  3. the result is iterated to a fixpoint where no two face-, edge- or
//     corner-adjacent leaves differ by more than one level — conflicts
//     are always resolved by refining the coarser block, never by
//     undoing a refinement, so marks act as resolution floors.
//
// marks runs parallel to leaves. The returned slice is sorted in
// canonical forest order (Morton key of the root coordinate, then
// BlockID), and the call is deterministic: equal inputs produce equal
// outputs on every rank. Volume is conserved exactly — the sum of
// 8^-level over leaves never changes.
func Grade(leaves []Leaf, marks []Mark, grid [3]int, periodic [3]bool, maxLevel int) []Leaf {
	if len(marks) != len(leaves) {
		panic(fmt.Sprintf("blockforest: Grade got %d marks for %d leaves", len(marks), len(leaves)))
	}
	g := &graded{grid: grid, periodic: periodic, leaves: make(map[lkey]Leaf, len(leaves))}
	for _, l := range leaves {
		g.leaves[g.key(l)] = l
	}

	// Phase 1: refine marks.
	for i, l := range leaves {
		if marks[i] == MarkRefine && l.Level() < maxLevel {
			g.split(l)
		}
	}

	// Phase 2: octet-complete coarsening. Group coarsen votes by parent;
	// merge only octets whose every sibling is still a leaf (a sibling
	// split in phase 1 vetoes the merge).
	type octet struct {
		count int
		coord [3]int
	}
	votes := make(map[BlockID]*octet)
	for i, l := range leaves {
		if marks[i] == MarkCoarsen && l.Level() > 0 {
			p := l.ID.Parent()
			if v := votes[p]; v != nil {
				v.count++
			} else {
				votes[p] = &octet{count: 1, coord: l.Coord}
			}
		}
	}
	for parent, v := range votes {
		if v.count != 8 {
			continue
		}
		ok := true
		children := [8]Leaf{}
		for o := 0; o < 8; o++ {
			c, exists := g.leaves[g.key(Leaf{ID: parent.Child(o), Coord: v.coord})]
			if !exists || c.ID != parent.Child(o) {
				ok = false
				break
			}
			children[o] = c
		}
		if !ok {
			continue
		}
		for o := 0; o < 8; o++ {
			delete(g.leaves, g.key(children[o]))
		}
		p := Leaf{ID: parent, Coord: children[0].Coord, Rank: children[0].Rank}
		g.leaves[g.key(p)] = p
	}

	// Phase 3: 2:1 fixpoint. Any leaf with a neighbor two or more levels
	// coarser forces that coarse leaf to split. Iterate until quiet; each
	// pass walks a sorted snapshot so the split order (and therefore the
	// intermediate map state) is deterministic.
	var offs [][3]int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx != 0 || dy != 0 || dz != 0 {
					offs = append(offs, [3]int{dx, dy, dz})
				}
			}
		}
	}
	for {
		snapshot := g.sorted()
		var tooCoarse []Leaf
		seen := make(map[lkey]bool)
		for _, l := range snapshot {
			lv := l.Level()
			idx := LevelIndex(l.Coord, l.ID)
			for _, off := range offs {
				n, ok := g.neighbor(lv, idx, off)
				if !ok {
					continue
				}
				c, clv, found := g.covering(lv, n)
				if !found || clv >= lv-1 {
					continue
				}
				k := g.key(c)
				if !seen[k] {
					seen[k] = true
					tooCoarse = append(tooCoarse, c)
				}
			}
		}
		if len(tooCoarse) == 0 {
			break
		}
		for _, c := range tooCoarse {
			if _, still := g.leaves[g.key(c)]; still {
				g.split(c)
			}
		}
	}
	return g.sorted()
}

// sorted returns the working set in canonical forest order.
func (g *graded) sorted() []Leaf {
	out := make([]Leaf, 0, len(g.leaves))
	for _, l := range g.leaves {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := mortonKey(out[i].Coord), mortonKey(out[j].Coord)
		if ki != kj {
			return ki < kj
		}
		return out[i].ID.Less(out[j].ID)
	})
	return out
}

// CheckGraded verifies the 2:1 invariant of a leaf set: no two adjacent
// leaves (faces, edges or corners, with periodic wrap) differ by more
// than one level, and every region is covered at most once.
func CheckGraded(leaves []Leaf, grid [3]int, periodic [3]bool) error {
	g := &graded{grid: grid, periodic: periodic, leaves: make(map[lkey]Leaf, len(leaves))}
	for _, l := range leaves {
		k := g.key(l)
		if prev, dup := g.leaves[k]; dup {
			return fmt.Errorf("blockforest: leaves %v and %v cover the same region %v", prev.ID, l.ID, k)
		}
		g.leaves[k] = l
	}
	for _, l := range leaves {
		lv := l.Level()
		idx := LevelIndex(l.Coord, l.ID)
		// Overlap with a strict ancestor region is also a double cover.
		if _, clv, found := g.covering(lv, idx); found && clv != lv {
			return fmt.Errorf("blockforest: leaf %v shadowed by coarser leaf at level %d", l.ID, clv)
		}
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					n, ok := g.neighbor(lv, idx, [3]int{dx, dy, dz})
					if !ok {
						continue
					}
					if c, clv, found := g.covering(lv, n); found && clv < lv-1 {
						return fmt.Errorf("blockforest: leaves %v (level %d) and %v (level %d) break 2:1 balance", l.ID, lv, c.ID, clv)
					}
				}
			}
		}
	}
	return nil
}

// AssignContiguous splits a workload sequence into numRanks contiguous
// chunks of near-equal weight and returns the rank of every entry — the
// one balancing rule behind BalanceMorton, BalanceMortonLeaves and the
// AMR level-weighted rebalancer. Entries must already be in curve order
// (Morton), so each rank receives a spatially compact run.
func AssignContiguous(workloads []float64, numRanks int) []int {
	if numRanks <= 0 {
		panic("blockforest: AssignContiguous requires at least one rank")
	}
	var total float64
	for _, w := range workloads {
		total += w
	}
	target := total / float64(numRanks)
	ranks := make([]int, len(workloads))
	rank := 0
	var acc float64
	for i, w := range workloads {
		if acc >= target && rank < numRanks-1 {
			rank++
			acc = 0
		}
		ranks[i] = rank
		acc += w
	}
	return ranks
}

// Grade re-grades the forest's leaf set in place from per-leaf marks:
// the setup-time twin of the runtime AMR controller, sharing the same
// 2:1 routine. Blocks created by refinement carry 1/8 of their parent's
// workload and memory per level; merged parents reaggregate them.
func (f *SetupForest) Grade(marks map[BlockID]Mark, maxLevel int) error {
	f.ensureRefinedIndex()
	old := f.AllLeaves()
	leaves := make([]Leaf, len(old))
	ms := make([]Mark, len(old))
	byID := make(map[BlockID]*SetupBlock, len(old))
	for i, b := range old {
		leaves[i] = Leaf{ID: b.ID, Coord: b.Coord, Rank: b.Rank}
		ms[i] = marks[b.ID]
		byID[b.ID] = b
	}
	graded := Grade(leaves, ms, f.GridSize, f.Periodic, maxLevel)

	// Rebuild the block maps: keep survivors, derive splits and merges
	// from the nearest surviving ancestor/descendants.
	newRefined := make(map[BlockID]*SetupBlock, len(graded))
	newRoots := make(map[[3]int]*SetupBlock)
	for _, l := range graded {
		b := byID[l.ID]
		if b == nil {
			b = f.deriveBlock(l, byID)
		}
		if l.ID.Level == 0 {
			newRoots[b.Coord] = b
		} else {
			newRefined[l.ID] = b
		}
	}
	f.blocks = newRoots
	f.refined = newRefined
	return nil
}

// deriveBlock materializes a SetupBlock for a graded leaf that did not
// exist before: either a child of a surviving ancestor (split) or the
// parent of merged children.
func (f *SetupForest) deriveBlock(l Leaf, byID map[BlockID]*SetupBlock) *SetupBlock {
	// Split path: walk up to the nearest pre-existing ancestor.
	id := l.ID
	var path []int
	for {
		if anc, ok := byID[id]; ok {
			b := &SetupBlock{ID: l.ID, Coord: anc.Coord, AABB: anc.AABB, Workload: anc.Workload, Memory: anc.Memory, Rank: l.Rank}
			for i := len(path) - 1; i >= 0; i-- {
				b.AABB = b.AABB.Octant(path[i])
				b.Workload /= 8
				b.Memory /= 8
			}
			return b
		}
		if id.Level == 0 {
			break
		}
		path = append(path, id.Octant())
		id = id.Parent()
	}
	// Merge path: aggregate the eight former children.
	var b *SetupBlock
	for o := 0; o < 8; o++ {
		c := byID[l.ID.Child(o)]
		if c == nil {
			panic(fmt.Sprintf("blockforest: graded leaf %v has neither ancestor nor children", l.ID))
		}
		if b == nil {
			b = &SetupBlock{ID: l.ID, Coord: c.Coord, AABB: c.AABB, Rank: l.Rank}
		}
		for d := 0; d < 3; d++ {
			if c.AABB.Min[d] < b.AABB.Min[d] {
				b.AABB.Min[d] = c.AABB.Min[d]
			}
			if c.AABB.Max[d] > b.AABB.Max[d] {
				b.AABB.Max[d] = c.AABB.Max[d]
			}
		}
		b.Workload += c.Workload
		b.Memory += c.Memory
	}
	return b
}
