package blockforest

import (
	"bytes"
	"math/rand"
	"testing"
)

// Corrupted block-structure files must produce errors, never panics: the
// loader is the single point where external data enters the simulation.
func TestLoadCorruptedInputs(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 4, 4}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(8)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("%s: Load panicked: %v", name, p)
			}
		}()
		// Errors are fine; panics and silent success with broken trailers
		// are not. (Truncations inside the last block record may pass or
		// fail depending on cut position; we only require no panic.)
		_, _ = Load(bytes.NewReader(data))
	}

	check("empty", nil)
	check("magic only", good[:4])
	check("bad magic", append([]byte("XXXX"), good[4:]...))
	for _, cut := range []int{5, 20, 50, len(good) / 2, len(good) - 3} {
		check("truncated", good[:cut])
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), good...)
		for i := 0; i < 5; i++ {
			corrupted[4+r.Intn(len(corrupted)-4)] ^= byte(1 << r.Intn(8))
		}
		check("bitflips", corrupted)
	}
}

// With the WBF3 CRC32C trailer, every single-bit flip anywhere in the
// file — header, block records, or the trailer itself — must be detected
// as an error, not merely avoid a panic.
func TestLoadDetectsEveryBitFlip(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(4)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	for off := 0; off < len(good); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[off] ^= byte(1 << bit)
			if _, err := Load(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit %d at offset %d went undetected", bit, off)
			}
		}
	}
}

// Legacy WBF1 files (no integrity trailer) must be rejected with a clear
// error instead of being trusted.
func TestLoadRejectsLegacyVersion(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(2)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte("WBF1"), buf.Bytes()[4:]...)
	if _, err := Load(bytes.NewReader(legacy)); err == nil {
		t.Fatal("legacy WBF1 magic accepted")
	}
}

// Truncations that cut whole block records still decode the header and
// must report an error rather than returning a short forest silently.
func TestLoadTruncatedBlocksErrors(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 4, 4}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(8)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Remove exactly the last two block records.
	perBlock := (len(good) - int(headerSize())) / f.NumBlocks()
	short := good[:len(good)-2*perBlock]
	if _, err := Load(bytes.NewReader(short)); err == nil {
		t.Error("truncated block list accepted")
	}
}

func TestLoadRefinedCorrupted(t *testing.T) {
	f := NewSetupForest(
		NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{8, 8, 8}, [3]bool{})
	if _, err := f.RefineBlock(f.Block([3]int{0, 0, 0}).ID); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.SaveRefined(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{3, 10, 40, len(good) / 2} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("cut %d: panicked: %v", cut, p)
				}
			}()
			if _, err := LoadRefined(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("cut %d: truncated refined file accepted", cut)
			}
		}()
	}
}
