package blockforest

import (
	"fmt"
	"sort"
)

// SetupBlock is one block during the initialization phase: global
// knowledge, later shed when the distributed forest is built.
type SetupBlock struct {
	ID    BlockID
	Coord [3]int // position in the root block grid
	AABB  AABB
	// Workload is the balancing weight of the block; the paper assigns the
	// number of fluid cells.
	Workload float64
	// Memory is the memory weight (allocated cells), constrained per rank
	// during balancing.
	Memory float64
	// Rank is the process the block is assigned to; -1 before balancing.
	Rank int
}

// SetupForest is the global domain partitioning built during
// initialization: a regular grid of root blocks over the domain bounding
// box from which blocks not intersecting the computational domain have
// been removed. Its memory scales with the total number of blocks — which
// is why the paper runs this phase separately and stores the result in a
// compact file.
type SetupForest struct {
	Domain        AABB
	GridSize      [3]int
	CellsPerBlock [3]int
	Periodic      [3]bool

	blocks map[[3]int]*SetupBlock
	// refined holds leaves below level 0; see refine.go. The simulation
	// algorithms operate on flat forests only, as in the paper.
	refined map[BlockID]*SetupBlock
}

// NewSetupForest subdivides the domain into a grid[0] x grid[1] x grid[2]
// grid of equally sized root blocks, each carrying cells[0..2] lattice
// cells.
func NewSetupForest(domain AABB, grid, cells [3]int, periodic [3]bool) *SetupForest {
	for i := 0; i < 3; i++ {
		if grid[i] <= 0 || cells[i] <= 0 {
			panic(fmt.Sprintf("blockforest: invalid grid %v or cells %v", grid, cells))
		}
	}
	f := &SetupForest{
		Domain:        domain,
		GridSize:      grid,
		CellsPerBlock: cells,
		Periodic:      periodic,
		blocks:        make(map[[3]int]*SetupBlock),
	}
	for k := 0; k < grid[2]; k++ {
		for j := 0; j < grid[1]; j++ {
			for i := 0; i < grid[0]; i++ {
				c := [3]int{i, j, k}
				f.blocks[c] = &SetupBlock{
					ID:       BlockID{Tree: f.treeIndex(c)},
					Coord:    c,
					AABB:     f.BlockAABB(c),
					Workload: float64(cells[0] * cells[1] * cells[2]),
					Memory:   float64(cells[0] * cells[1] * cells[2]),
					Rank:     -1,
				}
			}
		}
	}
	return f
}

// treeIndex linearizes a grid coordinate into the root block index.
func (f *SetupForest) treeIndex(c [3]int) uint32 {
	return uint32((c[2]*f.GridSize[1]+c[1])*f.GridSize[0] + c[0])
}

// BlockAABB returns the bounding box of the block at grid coordinate c.
func (f *SetupForest) BlockAABB(c [3]int) AABB {
	s := f.Domain.Size()
	var b AABB
	for i := 0; i < 3; i++ {
		w := s[i] / float64(f.GridSize[i])
		b.Min[i] = f.Domain.Min[i] + float64(c[i])*w
		b.Max[i] = f.Domain.Min[i] + float64(c[i]+1)*w
	}
	return b
}

// CellSize returns the lattice spacing dx per axis.
func (f *SetupForest) CellSize() [3]float64 {
	s := f.Domain.Size()
	return [3]float64{
		s[0] / float64(f.GridSize[0]*f.CellsPerBlock[0]),
		s[1] / float64(f.GridSize[1]*f.CellsPerBlock[1]),
		s[2] / float64(f.GridSize[2]*f.CellsPerBlock[2]),
	}
}

// Block returns the block at grid coordinate c, or nil if it was removed.
func (f *SetupForest) Block(c [3]int) *SetupBlock { return f.blocks[c] }

// NumBlocks returns the number of existing blocks.
func (f *SetupForest) NumBlocks() int { return len(f.blocks) }

// TotalCells returns the total number of allocated lattice cells.
func (f *SetupForest) TotalCells() int64 {
	per := int64(f.CellsPerBlock[0]) * int64(f.CellsPerBlock[1]) * int64(f.CellsPerBlock[2])
	return per * int64(len(f.blocks))
}

// RemoveBlock discards the block at c — used for blocks that do not
// intersect the computational domain. Removing a missing block is a no-op.
func (f *SetupForest) RemoveBlock(c [3]int) { delete(f.blocks, c) }

// Keep discards every block whose coordinate is not accepted by keep,
// returning the number of removed blocks.
func (f *SetupForest) Keep(keep func(b *SetupBlock) bool) int {
	removed := 0
	for c, b := range f.blocks {
		if !keep(b) {
			delete(f.blocks, c)
			removed++
		}
	}
	return removed
}

// Blocks returns all existing blocks in deterministic (Morton curve)
// order.
func (f *SetupForest) Blocks() []*SetupBlock {
	out := make([]*SetupBlock, 0, len(f.blocks))
	for _, b := range f.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		return mortonKey(out[i].Coord) < mortonKey(out[j].Coord)
	})
	return out
}

// Neighbors returns the grid coordinates of the existing blocks in the
// 26-neighborhood of c, respecting periodic axes. The offset of each
// neighbor relative to c is returned alongside (before wrapping).
func (f *SetupForest) Neighbors(c [3]int) (coords [][3]int, offsets [][3]int) {
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := [3]int{c[0] + dx, c[1] + dy, c[2] + dz}
				ok := true
				for i := 0; i < 3; i++ {
					if n[i] < 0 || n[i] >= f.GridSize[i] {
						if !f.Periodic[i] {
							ok = false
							break
						}
						n[i] = (n[i] + f.GridSize[i]) % f.GridSize[i]
					}
				}
				if !ok {
					continue
				}
				if _, exists := f.blocks[n]; !exists {
					continue
				}
				coords = append(coords, n)
				offsets = append(offsets, [3]int{dx, dy, dz})
			}
		}
	}
	return coords, offsets
}

// MortonKey interleaves the bits of a grid coordinate into the Morton
// (Z-order) space-filling curve key used for locality-preserving load
// balancing; exported for the dynamic rebalancing in package sim.
func MortonKey(c [3]int) uint64 { return mortonKey(c) }

// mortonKey interleaves the bits of a grid coordinate into the Morton
// (Z-order) space-filling curve key used for locality-preserving static
// load balancing.
func mortonKey(c [3]int) uint64 {
	var key uint64
	for bit := 0; bit < 21; bit++ {
		key |= (uint64(c[0]) >> bit & 1) << (3 * bit)
		key |= (uint64(c[1]) >> bit & 1) << (3*bit + 1)
		key |= (uint64(c[2]) >> bit & 1) << (3*bit + 2)
	}
	return key
}

// BalanceMorton assigns blocks to numRanks processes by cutting the Morton
// curve into contiguous pieces of approximately equal workload — the
// simple, locality-preserving static balancer used for dense regular
// domains. Some ranks may receive no block when there are fewer blocks
// than ranks (the paper notes the cost of a few empty processes is
// negligible for memory-bound kernels).
func (f *SetupForest) BalanceMorton(numRanks int) {
	blocks := f.Blocks()
	workloads := make([]float64, len(blocks))
	for i, b := range blocks {
		workloads[i] = b.Workload
	}
	for i, r := range AssignContiguous(workloads, numRanks) {
		blocks[i].Rank = r
	}
}

// MaxRank returns the largest assigned rank, or -1 if unbalanced.
func (f *SetupForest) MaxRank() int {
	m := -1
	for _, b := range f.blocks {
		if b.Rank > m {
			m = b.Rank
		}
	}
	return m
}

// RankWorkloads sums the workload per rank over numRanks ranks.
func (f *SetupForest) RankWorkloads(numRanks int) []float64 {
	w := make([]float64, numRanks)
	for _, b := range f.blocks {
		if b.Rank >= 0 && b.Rank < numRanks {
			w[b.Rank] += b.Workload
		}
	}
	return w
}
