// Package blockforest implements the block-structured domain partitioning
// of the paper: the simulation domain is subdivided into equally sized
// blocks, each the root of an octree (forming a forest of octrees), and
// each block carries a uniform grid of lattice cells.
//
// Two representations exist. The SetupForest is the global view used by
// the initialization phase: it knows every block, assigns workloads and
// ranks, and can be serialized to the compact binary file format of
// section 2.2. The BlockForest is the fully distributed per-rank view used
// during the simulation: a rank stores complete data only for its own
// blocks and lightweight headers for blocks in its immediate neighborhood,
// so per-rank memory is independent of the total number of processes.
package blockforest

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min [3]float64
	Max [3]float64
}

// NewAABB constructs a box from two corner points, normalizing the order.
func NewAABB(min, max [3]float64) AABB {
	b := AABB{Min: min, Max: max}
	for i := 0; i < 3; i++ {
		if b.Min[i] > b.Max[i] {
			b.Min[i], b.Max[i] = b.Max[i], b.Min[i]
		}
	}
	return b
}

// Size returns the edge lengths of the box.
func (b AABB) Size() [3]float64 {
	return [3]float64{b.Max[0] - b.Min[0], b.Max[1] - b.Min[1], b.Max[2] - b.Min[2]}
}

// Center returns the barycenter of the box.
func (b AABB) Center() [3]float64 {
	return [3]float64{
		0.5 * (b.Min[0] + b.Max[0]),
		0.5 * (b.Min[1] + b.Max[1]),
		0.5 * (b.Min[2] + b.Max[2]),
	}
}

// Volume returns the volume of the box.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s[0] * s[1] * s[2]
}

// Contains reports whether p lies inside or on the boundary of the box.
func (b AABB) Contains(p [3]float64) bool {
	for i := 0; i < 3; i++ {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two boxes overlap (closed boxes: touching
// counts as intersecting).
func (b AABB) Intersects(o AABB) bool {
	for i := 0; i < 3; i++ {
		if b.Max[i] < o.Min[i] || o.Max[i] < b.Min[i] {
			return false
		}
	}
	return true
}

// CircumsphereRadius returns the radius of the smallest sphere around the
// box center containing the box — the paper's R(b) for the quick
// block-domain intersection rejection test.
func (b AABB) CircumsphereRadius() float64 {
	s := b.Size()
	return 0.5 * math.Sqrt(s[0]*s[0]+s[1]*s[1]+s[2]*s[2])
}

// InsphereRadius returns the radius of the largest sphere around the box
// center contained in the box — the paper's r(b) for the quick acceptance
// test.
func (b AABB) InsphereRadius() float64 {
	s := b.Size()
	m := s[0]
	if s[1] < m {
		m = s[1]
	}
	if s[2] < m {
		m = s[2]
	}
	return 0.5 * m
}

// Octant returns the i-th (0..7) child box of an octree subdivision; bit 0
// selects the upper half in x, bit 1 in y, bit 2 in z.
func (b AABB) Octant(i int) AABB {
	if i < 0 || i > 7 {
		panic(fmt.Sprintf("blockforest: invalid octant %d", i))
	}
	c := b.Center()
	var o AABB
	for d := 0; d < 3; d++ {
		if i>>(d)&1 == 1 {
			o.Min[d], o.Max[d] = c[d], b.Max[d]
		} else {
			o.Min[d], o.Max[d] = b.Min[d], c[d]
		}
	}
	return o
}
