package blockforest

import (
	"bytes"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// The compact block-structure file format of section 2.2: a custom
// endian-independent binary format (all integers little-endian by
// definition) heavily optimized for minimal file size. Quantities such as
// process ranks and grid coordinates are stored using only the low-order
// bytes that actually carry information — e.g. two bytes suffice for the
// ranks of a simulation with up to 65,536 processes even though four
// bytes are used in memory.
//
// Version 3 ("WBF3"; "WBF2" is the refined-forest format) appends a
// CRC32C trailer over the entire file so silent corruption is detected at
// load time. Version-1 files, which carry no integrity information, are
// rejected loudly.

const (
	fileMagic       = "WBF3"
	fileMagicLegacy = "WBF1"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcReader tees everything read through it into a CRC32C accumulator.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.New(castagnoli)}
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// minBytes returns the number of bytes needed to represent maxVal.
func minBytes(maxVal uint64) int {
	n := 1
	for maxVal > 0xFF {
		maxVal >>= 8
		n++
	}
	return n
}

func putUint(buf *bytes.Buffer, v uint64, nbytes int) {
	for i := 0; i < nbytes; i++ {
		buf.WriteByte(byte(v >> (8 * i)))
	}
}

func getUint(r io.Reader, nbytes int) (uint64, error) {
	if nbytes < 1 || nbytes > 8 {
		return 0, fmt.Errorf("blockforest: invalid field width %d", nbytes)
	}
	var b [8]byte
	if _, err := io.ReadFull(r, b[:nbytes]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < nbytes; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

func putFloat(buf *bytes.Buffer, v float64) {
	putUint(buf, math.Float64bits(v), 8)
}

func getFloat(r io.Reader) (float64, error) {
	v, err := getUint(r, 8)
	return math.Float64frombits(v), err
}

// Save writes the forest, including block ranks and workloads, in the
// compact binary format. Blocks must have been balanced (non-negative
// ranks) or ranks are stored as zero.
func (f *SetupForest) Save(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	for i := 0; i < 3; i++ {
		putFloat(&buf, f.Domain.Min[i])
	}
	for i := 0; i < 3; i++ {
		putFloat(&buf, f.Domain.Max[i])
	}
	for i := 0; i < 3; i++ {
		putUint(&buf, uint64(f.GridSize[i]), 4)
	}
	for i := 0; i < 3; i++ {
		putUint(&buf, uint64(f.CellsPerBlock[i]), 4)
	}
	var periodic byte
	for i := 0; i < 3; i++ {
		if f.Periodic[i] {
			periodic |= 1 << i
		}
	}
	buf.WriteByte(periodic)

	blocks := f.Blocks()
	maxRank := 0
	maxCoord := 0
	maxWork := uint64(0)
	for _, b := range blocks {
		if b.Rank > maxRank {
			maxRank = b.Rank
		}
		for i := 0; i < 3; i++ {
			if b.Coord[i] > maxCoord {
				maxCoord = b.Coord[i]
			}
		}
		if w := uint64(b.Workload + 0.5); w > maxWork {
			maxWork = w
		}
	}
	putUint(&buf, uint64(len(blocks)), 8)
	putUint(&buf, uint64(maxRank+1), 4)
	bytesCoord := minBytes(uint64(maxCoord))
	bytesRank := minBytes(uint64(maxRank))
	bytesWork := minBytes(maxWork)
	buf.WriteByte(byte(bytesCoord))
	buf.WriteByte(byte(bytesRank))
	buf.WriteByte(byte(bytesWork))

	for _, b := range blocks {
		for i := 0; i < 3; i++ {
			putUint(&buf, uint64(b.Coord[i]), bytesCoord)
		}
		rank := b.Rank
		if rank < 0 {
			rank = 0
		}
		putUint(&buf, uint64(rank), bytesRank)
		putUint(&buf, uint64(b.Workload+0.5), bytesWork)
	}
	// Trailer: CRC32C over everything above (not itself).
	putUint(&buf, uint64(crc32.Checksum(buf.Bytes(), castagnoli)), 4)
	_, err := w.Write(buf.Bytes())
	return err
}

// Load reads a forest previously written by Save, verifying the CRC32C
// trailer.
func Load(rd io.Reader) (*SetupForest, error) {
	r := newCRCReader(rd)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("blockforest: reading magic: %w", err)
	}
	switch string(magic) {
	case fileMagic:
	case fileMagicLegacy:
		return nil, fmt.Errorf("blockforest: legacy %s file has no integrity trailer; re-save with this version", fileMagicLegacy)
	default:
		return nil, fmt.Errorf("blockforest: bad magic %q", magic)
	}
	var domain AABB
	for i := 0; i < 3; i++ {
		v, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		domain.Min[i] = v
	}
	for i := 0; i < 3; i++ {
		v, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		domain.Max[i] = v
	}
	var grid, cells [3]int
	for i := 0; i < 3; i++ {
		v, err := getUint(r, 4)
		if err != nil {
			return nil, err
		}
		grid[i] = int(v)
	}
	for i := 0; i < 3; i++ {
		v, err := getUint(r, 4)
		if err != nil {
			return nil, err
		}
		cells[i] = int(v)
	}
	pb, err := getUint(r, 1)
	if err != nil {
		return nil, err
	}
	var periodic [3]bool
	for i := 0; i < 3; i++ {
		periodic[i] = pb>>i&1 == 1
	}

	numBlocks, err := getUint(r, 8)
	if err != nil {
		return nil, err
	}
	if _, err := getUint(r, 4); err != nil { // numRanks (informational)
		return nil, err
	}
	sizes := make([]byte, 3)
	if _, err := io.ReadFull(r, sizes); err != nil {
		return nil, err
	}
	bytesCoord, bytesRank, bytesWork := int(sizes[0]), int(sizes[1]), int(sizes[2])
	for _, s := range sizes {
		if s < 1 || s > 8 {
			return nil, fmt.Errorf("blockforest: invalid field width %d", s)
		}
	}

	// Sanity-check the block count against the grid before trusting it
	// for allocation: a corrupted count must not drive memory use.
	maxBlocks := uint64(grid[0]) * uint64(grid[1]) * uint64(grid[2])
	if grid[0] <= 0 || grid[1] <= 0 || grid[2] <= 0 || numBlocks > maxBlocks {
		return nil, fmt.Errorf("blockforest: implausible header: grid %v with %d blocks", grid, numBlocks)
	}
	f := &SetupForest{
		Domain:        domain,
		GridSize:      grid,
		CellsPerBlock: cells,
		Periodic:      periodic,
		blocks:        make(map[[3]int]*SetupBlock, numBlocks),
	}
	for n := uint64(0); n < numBlocks; n++ {
		var c [3]int
		for i := 0; i < 3; i++ {
			v, err := getUint(r, bytesCoord)
			if err != nil {
				return nil, fmt.Errorf("blockforest: block %d: %w", n, err)
			}
			c[i] = int(v)
		}
		rank, err := getUint(r, bytesRank)
		if err != nil {
			return nil, err
		}
		work, err := getUint(r, bytesWork)
		if err != nil {
			return nil, err
		}
		f.blocks[c] = &SetupBlock{
			ID:       BlockID{Tree: f.treeIndex(c)},
			Coord:    c,
			AABB:     f.BlockAABB(c),
			Workload: float64(work),
			Memory:   float64(cells[0] * cells[1] * cells[2]),
			Rank:     int(rank),
		}
	}
	// The trailer itself is read outside the CRC accumulation.
	want := r.crc.Sum32()
	stored, err := getUint(rd, 4)
	if err != nil {
		return nil, fmt.Errorf("blockforest: missing CRC trailer: %w", err)
	}
	if uint32(stored) != want {
		return nil, fmt.Errorf("blockforest: CRC mismatch: stored %08x, computed %08x", stored, want)
	}
	return f, nil
}

// FileSize returns the exact number of bytes Save will produce without
// writing them — used to validate the file-size claims of section 2.2.
func (f *SetupForest) FileSize() int64 {
	blocks := f.Blocks()
	maxRank := 0
	maxCoord := 0
	maxWork := uint64(0)
	for _, b := range blocks {
		if b.Rank > maxRank {
			maxRank = b.Rank
		}
		for i := 0; i < 3; i++ {
			if b.Coord[i] > maxCoord {
				maxCoord = b.Coord[i]
			}
		}
		if w := uint64(b.Workload + 0.5); w > maxWork {
			maxWork = w
		}
	}
	header := int64(4 + 6*8 + 3*4 + 3*4 + 1 + 8 + 4 + 3)
	const trailer = 4 // CRC32C
	perBlock := int64(3*minBytes(uint64(maxCoord)) + minBytes(uint64(maxRank)) + minBytes(maxWork))
	return header + perBlock*int64(len(blocks)) + trailer
}
