package blockforest

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"walberla/internal/comm"
)

func unitDomain() AABB {
	return NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
}

func TestAABBBasics(t *testing.T) {
	b := NewAABB([3]float64{1, 2, 3}, [3]float64{0, 5, 4})
	if b.Min != [3]float64{0, 2, 3} || b.Max != [3]float64{1, 5, 4} {
		t.Errorf("normalization failed: %+v", b)
	}
	if b.Volume() != 1*3*1 {
		t.Errorf("Volume = %v, want 3", b.Volume())
	}
	if c := b.Center(); c != [3]float64{0.5, 3.5, 3.5} {
		t.Errorf("Center = %v", c)
	}
	if !b.Contains([3]float64{0.5, 3, 3.5}) || b.Contains([3]float64{2, 3, 3.5}) {
		t.Error("Contains wrong")
	}
}

func TestAABBIntersects(t *testing.T) {
	a := NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	cases := []struct {
		b    AABB
		want bool
	}{
		{NewAABB([3]float64{0.5, 0.5, 0.5}, [3]float64{2, 2, 2}), true},
		{NewAABB([3]float64{1, 0, 0}, [3]float64{2, 1, 1}), true}, // touching
		{NewAABB([3]float64{1.1, 0, 0}, [3]float64{2, 1, 1}), false},
		{NewAABB([3]float64{-1, -1, -1}, [3]float64{2, 2, 2}), true},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSphereRadii(t *testing.T) {
	b := NewAABB([3]float64{0, 0, 0}, [3]float64{2, 4, 4})
	if got := b.InsphereRadius(); got != 1 {
		t.Errorf("InsphereRadius = %v, want 1", got)
	}
	want := 0.5 * math.Sqrt(4+16+16)
	if got := b.CircumsphereRadius(); math.Abs(got-want) > 1e-15 {
		t.Errorf("CircumsphereRadius = %v, want %v", got, want)
	}
	if b.InsphereRadius() > b.CircumsphereRadius() {
		t.Error("insphere larger than circumsphere")
	}
}

func TestOctants(t *testing.T) {
	b := unitDomain()
	var vol float64
	for i := 0; i < 8; i++ {
		o := b.Octant(i)
		vol += o.Volume()
		if !b.Intersects(o) {
			t.Errorf("octant %d outside parent", i)
		}
		c := o.Center()
		for d := 0; d < 3; d++ {
			upper := i>>d&1 == 1
			if upper != (c[d] > 0.5) {
				t.Errorf("octant %d axis %d on wrong side", i, d)
			}
		}
	}
	if math.Abs(vol-1) > 1e-15 {
		t.Errorf("octant volumes sum to %v, want 1", vol)
	}
}

func TestBlockIDTree(t *testing.T) {
	root := BlockID{Tree: 5}
	child := root.Child(3)
	if child.Level != 1 || child.Octant() != 3 || child.Parent() != root {
		t.Errorf("child/parent round trip failed: %+v", child)
	}
	grand := child.Child(7)
	if grand.Level != 2 || grand.Octant() != 7 || grand.Parent() != child {
		t.Errorf("grandchild wrong: %+v", grand)
	}
}

func TestBlockIDEncodeDecode(t *testing.T) {
	f := func(tree uint32, path uint64, level uint8) bool {
		level = level % 10
		path &= 1<<(3*uint(level)) - 1
		id := BlockID{Tree: tree, Path: path, Level: level}
		return DecodeBlockID(id.Encode(), level) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockIDOrdering(t *testing.T) {
	a := BlockID{Tree: 1}
	b := BlockID{Tree: 2}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less not a strict order on trees")
	}
	c := a.Child(0)
	if !a.Less(c) {
		t.Error("parent must order before child")
	}
}

func TestSetupForestGrid(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{4, 2, 3}, [3]int{8, 8, 8}, [3]bool{})
	if f.NumBlocks() != 24 {
		t.Fatalf("NumBlocks = %d, want 24", f.NumBlocks())
	}
	if f.TotalCells() != 24*512 {
		t.Errorf("TotalCells = %d, want %d", f.TotalCells(), 24*512)
	}
	b := f.Block([3]int{3, 1, 2})
	if b == nil {
		t.Fatal("corner block missing")
	}
	if b.AABB.Max != [3]float64{1, 1, 1} {
		t.Errorf("corner block AABB.Max = %v", b.AABB.Max)
	}
	dx := f.CellSize()
	if math.Abs(dx[0]-1.0/32.0) > 1e-15 || math.Abs(dx[1]-1.0/16.0) > 1e-15 || math.Abs(dx[2]-1.0/24.0) > 1e-15 {
		t.Errorf("CellSize = %v", dx)
	}
}

func TestSetupForestBlockAABBsTile(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{3, 3, 3}, [3]int{4, 4, 4}, [3]bool{})
	var vol float64
	for _, b := range f.Blocks() {
		vol += b.AABB.Volume()
	}
	if math.Abs(vol-1) > 1e-12 {
		t.Errorf("block volumes sum to %v, want 1", vol)
	}
}

func TestNeighbors(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{3, 3, 3}, [3]int{4, 4, 4}, [3]bool{})
	coords, _ := f.Neighbors([3]int{1, 1, 1})
	if len(coords) != 26 {
		t.Errorf("center block has %d neighbors, want 26", len(coords))
	}
	coords, _ = f.Neighbors([3]int{0, 0, 0})
	if len(coords) != 7 {
		t.Errorf("corner block has %d neighbors, want 7", len(coords))
	}
	// Remove a block: it must vanish from neighborhoods.
	f.RemoveBlock([3]int{1, 1, 0})
	coords, _ = f.Neighbors([3]int{1, 1, 1})
	if len(coords) != 25 {
		t.Errorf("after removal %d neighbors, want 25", len(coords))
	}
}

func TestNeighborsPeriodic(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{3, 3, 3}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	coords, offsets := f.Neighbors([3]int{0, 0, 0})
	if len(coords) != 26 {
		t.Fatalf("periodic corner block has %d neighbors, want 26", len(coords))
	}
	// The -x neighbor of column 0 wraps to column 2.
	found := false
	for i, off := range offsets {
		if off == [3]int{-1, 0, 0} {
			found = true
			if coords[i] != [3]int{2, 0, 0} {
				t.Errorf("periodic -x neighbor = %v, want (2,0,0)", coords[i])
			}
		}
	}
	if !found {
		t.Error("no -x neighbor found")
	}
}

func TestKeepAndRemove(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{4, 4, 4}, [3]int{4, 4, 4}, [3]bool{})
	removed := f.Keep(func(b *SetupBlock) bool { return b.Coord[0] < 2 })
	if removed != 32 || f.NumBlocks() != 32 {
		t.Errorf("Keep removed %d, left %d; want 32/32", removed, f.NumBlocks())
	}
}

func TestMortonOrderIsDeterministicAndLocal(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{4, 4, 4}, [3]int{4, 4, 4}, [3]bool{})
	a := f.Blocks()
	b := f.Blocks()
	for i := range a {
		if a[i].Coord != b[i].Coord {
			t.Fatal("Blocks order not deterministic")
		}
	}
	// First 8 blocks of the Morton order form the lower 2x2x2 corner.
	for i := 0; i < 8; i++ {
		c := a[i].Coord
		if c[0] > 1 || c[1] > 1 || c[2] > 1 {
			t.Errorf("Morton block %d at %v outside first octant", i, c)
		}
	}
}

func TestBalanceMortonEvenWorkloads(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{8, 8, 8}, [3]int{4, 4, 4}, [3]bool{})
	const ranks = 16
	f.BalanceMorton(ranks)
	if f.MaxRank() != ranks-1 {
		t.Fatalf("MaxRank = %d, want %d", f.MaxRank(), ranks-1)
	}
	w := f.RankWorkloads(ranks)
	total := 0.0
	for _, v := range w {
		total += v
	}
	target := total / ranks
	for r, v := range w {
		if v < target*0.5 || v > target*1.5 {
			t.Errorf("rank %d workload %v far from target %v", r, v, target)
		}
	}
}

// The Morton curve balancer keeps blocks of one rank spatially adjacent
// ("blocks on one process are ideally neighboring each other to exploit
// fast local communication"): the fraction of neighbor pairs that stay
// rank-internal must be far above a scattered assignment.
func TestBalanceMortonLocality(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{8, 8, 8}, [3]int{4, 4, 4}, [3]bool{})
	const ranks = 8
	f.BalanceMorton(ranks)
	internalFrac := func(rankOf func(b *SetupBlock) int) float64 {
		internal, total := 0, 0
		for _, b := range f.Blocks() {
			coords, _ := f.Neighbors(b.Coord)
			for _, nc := range coords {
				total++
				if rankOf(f.Block(nc)) == rankOf(b) {
					internal++
				}
			}
		}
		return float64(internal) / float64(total)
	}
	morton := internalFrac(func(b *SetupBlock) int { return b.Rank })
	// Scattered round-robin assignment for comparison.
	idx := map[[3]int]int{}
	for i, b := range f.Blocks() {
		idx[b.Coord] = i % ranks
	}
	scattered := internalFrac(func(b *SetupBlock) int { return idx[b.Coord] })
	if morton < 2*scattered {
		t.Errorf("Morton locality %v not clearly above scattered %v", morton, scattered)
	}
	if morton < 0.4 {
		t.Errorf("Morton internal-neighbor fraction %v too low", morton)
	}
}

func TestBalanceMoreRanksThanBlocks(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(8)
	// Two blocks on eight ranks: some ranks stay empty, none invalid.
	for _, b := range f.Blocks() {
		if b.Rank < 0 || b.Rank >= 8 {
			t.Errorf("block %v assigned invalid rank %d", b.Coord, b.Rank)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := NewSetupForest(NewAABB([3]float64{-1, 0, 2}, [3]float64{3, 5, 7}),
		[3]int{5, 4, 3}, [3]int{16, 8, 4}, [3]bool{true, false, true})
	f.RemoveBlock([3]int{2, 2, 1})
	f.RemoveBlock([3]int{0, 0, 0})
	for i, b := range f.Blocks() {
		b.Workload = float64(100 + i)
	}
	f.BalanceMorton(7)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != f.FileSize() {
		t.Errorf("FileSize = %d, actual %d", f.FileSize(), buf.Len())
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks() != f.NumBlocks() || g.GridSize != f.GridSize ||
		g.CellsPerBlock != f.CellsPerBlock || g.Periodic != f.Periodic ||
		g.Domain != f.Domain {
		t.Fatalf("header mismatch: %+v vs %+v", g, f)
	}
	fa, ga := f.Blocks(), g.Blocks()
	for i := range fa {
		if fa[i].Coord != ga[i].Coord || fa[i].Rank != ga[i].Rank ||
			math.Abs(fa[i].Workload-ga[i].Workload) > 0.5 {
			t.Errorf("block %d mismatch: %+v vs %+v", i, fa[i], ga[i])
		}
	}
}

// Section 2.2: ranks of simulations with up to 65,536 processes must
// occupy exactly two bytes on disk.
func TestFileMinimalByteEncoding(t *testing.T) {
	if minBytes(255) != 1 || minBytes(256) != 2 || minBytes(65535) != 2 ||
		minBytes(65536) != 3 || minBytes(0) != 1 {
		t.Error("minBytes thresholds wrong")
	}
	f := NewSetupForest(unitDomain(), [3]int{16, 16, 16}, [3]int{4, 4, 4}, [3]bool{})
	// 4096 blocks, one per rank: ranks up to 4095 -> 2 bytes each.
	f.BalanceMorton(4096)
	perBlock := (f.FileSize() - headerSize()) / int64(f.NumBlocks())
	// coord: 1 byte x3, rank: 2 bytes, workload(64): 1 byte = 6 bytes.
	if perBlock != 6 {
		t.Errorf("per-block bytes = %d, want 6", perBlock)
	}
}

// headerSize is the fixed per-file overhead: header plus the 4-byte
// CRC32C trailer.
func headerSize() int64 { return 4 + 6*8 + 3*4 + 3*4 + 1 + 8 + 4 + 3 + 4 }

// The file size must scale linearly in blocks with a small constant — the
// paper stores half a million blocks in ~40 MiB; our format is tighter.
func TestFileSizeScaling(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{64, 64, 64}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(262144)
	perBlock := float64(f.FileSize()-headerSize()) / float64(f.NumBlocks())
	if perBlock > 16 {
		t.Errorf("per-block file cost %v bytes, want <= 16", perBlock)
	}
}

func TestBuildDistributedView(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{4, 4, 4}, [3]int{8, 8, 8}, [3]bool{})
	const ranks = 8
	f.BalanceMorton(ranks)
	total := 0
	for r := 0; r < ranks; r++ {
		bf := Build(f, r, ranks)
		total += len(bf.Blocks)
		for _, b := range bf.Blocks {
			if f.Block(b.Coord).Rank != r {
				t.Errorf("rank %d holds foreign block %v", r, b.Coord)
			}
			for _, n := range b.Neighbors {
				if got := f.Block(n.Coord).Rank; got != n.Rank {
					t.Errorf("neighbor header rank %d, truth %d", n.Rank, got)
				}
			}
		}
		if bf.LocalCells() != int64(len(bf.Blocks)*512) {
			t.Errorf("LocalCells = %d", bf.LocalCells())
		}
	}
	if total != f.NumBlocks() {
		t.Errorf("distributed views cover %d blocks, want %d", total, f.NumBlocks())
	}
}

// The distributed-memory invariant of section 2.2: the number of stored
// remote headers per rank depends on the local neighborhood only — growing
// the global domain with fixed per-rank share must not grow it.
func TestDistributedMemoryInvariant(t *testing.T) {
	headerCountFor := func(grid int) int {
		f := NewSetupForest(unitDomain(), [3]int{grid, grid, grid}, [3]int{4, 4, 4}, [3]bool{})
		ranks := grid * grid * grid // one block per rank
		f.BalanceMorton(ranks)
		// Inspect an interior rank (owner of an interior block).
		interior := f.Block([3]int{grid / 2, grid / 2, grid / 2}).Rank
		bf := Build(f, interior, ranks)
		if len(bf.Blocks) != 1 {
			t.Fatalf("grid %d: interior rank owns %d blocks, want 1", grid, len(bf.Blocks))
		}
		return bf.StoredHeaders()
	}
	h4, h8 := headerCountFor(4), headerCountFor(8)
	if h4 != 26 || h8 != 26 {
		t.Errorf("interior header counts %d and %d, want 26 and 26", h4, h8)
	}
}

func TestNeighborLookup(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{3, 3, 3}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(1)
	bf := Build(f, 0, 1)
	var center *Block
	for _, b := range bf.Blocks {
		if b.Coord == [3]int{1, 1, 1} {
			center = b
		}
	}
	if center == nil {
		t.Fatal("center block missing")
	}
	n := center.Neighbor([3]int{1, 0, 0})
	if n == nil || n.Coord != [3]int{2, 1, 1} {
		t.Errorf("+x neighbor = %+v", n)
	}
	if center.Neighbor([3]int{9, 9, 9}) != nil {
		t.Error("bogus offset returned a neighbor")
	}
}

// Distribute must reproduce Build's result via the broadcast protocol.
func TestDistributeOverComm(t *testing.T) {
	f := NewSetupForest(unitDomain(), [3]int{4, 4, 2}, [3]int{8, 8, 8}, [3]bool{})
	const ranks = 6
	f.BalanceMorton(ranks)
	comm.Run(ranks, func(c *comm.Comm) {
		var in *SetupForest
		if c.Rank() == 0 {
			in = f
		}
		bf, err := Distribute(c, in)
		if err != nil {
			t.Error(err)
			return
		}
		want := Build(f, c.Rank(), ranks)
		if len(bf.Blocks) != len(want.Blocks) {
			t.Errorf("rank %d: %d blocks via Distribute, %d via Build", c.Rank(), len(bf.Blocks), len(want.Blocks))
			return
		}
		for i := range bf.Blocks {
			if bf.Blocks[i].Coord != want.Blocks[i].Coord {
				t.Errorf("rank %d block %d coord mismatch", c.Rank(), i)
			}
			if len(bf.Blocks[i].Neighbors) != len(want.Blocks[i].Neighbors) {
				t.Errorf("rank %d block %d neighbor count mismatch", c.Rank(), i)
			}
		}
	})
}
