package blockforest

import (
	"bytes"
	"testing"
)

// volumeUnits measures the domain volume a leaf set covers, exactly, in
// units of 1/8^maxLevel root blocks: a level-ℓ leaf covers 8^(max-ℓ)
// units. Integer arithmetic, so conservation checks are equalities.
func volumeUnits(leaves []Leaf, maxLevel int) uint64 {
	var v uint64
	for _, l := range leaves {
		v += 1 << uint(3*(maxLevel-l.Level()))
	}
	return v
}

// FuzzRegrade drives the runtime grading routine with arbitrary mark
// sequences over several rounds — exactly how the AMR controller calls
// it, each round re-grading the previous round's output — and checks
// the invariants the solver relies on after every round: the result is
// a duplicate-free 2:1-graded cover of the domain (CheckGraded), the
// covered volume is conserved exactly, and no leaf exceeds the level
// cap.
func FuzzRegrade(f *testing.F) {
	f.Add([]byte{1, 1, 0, 2})
	f.Add([]byte{2, 2, 2, 2, 1, 0, 1, 0, 2, 1})
	f.Add(bytes.Repeat([]byte{1}, 64))
	f.Add(bytes.Repeat([]byte{1, 0, 2}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxLevel = 3
		grid := [3]int{2, 2, 1}
		periodic := [3]bool{true, false, true}
		var leaves []Leaf
		var tree uint32
		for z := 0; z < grid[2]; z++ {
			for y := 0; y < grid[1]; y++ {
				for x := 0; x < grid[0]; x++ {
					leaves = append(leaves, Leaf{ID: BlockID{Tree: tree}, Coord: [3]int{x, y, z}})
					tree++
				}
			}
		}
		want := volumeUnits(leaves, maxLevel)

		pos := 0
		for round := 0; round < 6 && pos < len(data); round++ {
			marks := make([]Mark, len(leaves))
			for i := range marks {
				if pos >= len(data) {
					break
				}
				marks[i] = Mark(int8(data[pos]%3) - 1)
				pos++
			}
			leaves = Grade(leaves, marks, grid, periodic, maxLevel)
			if err := CheckGraded(leaves, grid, periodic); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if got := volumeUnits(leaves, maxLevel); got != want {
				t.Fatalf("round %d: covers %d volume units, want %d", round, got, want)
			}
			for _, l := range leaves {
				if l.Level() > maxLevel {
					t.Fatalf("round %d: leaf %v exceeds max level %d", round, l.ID, maxLevel)
				}
			}
		}
	})
}
