// Package units converts between lattice units (dx = dt = rho = 1) and
// physical units, reproducing the dimensional arithmetic of section 4.3:
// the LBM is an explicit scheme, so the physical time step follows from
// the spatial resolution, the maximum physical velocity, and the largest
// stable lattice velocity — the paper's example being a 1.276 um
// resolution with 0.2 m/s peak blood velocity and a 0.1 stability bound,
// giving a 0.64 us time step and 1.25 simulated time steps per second on
// the full JUQUEEN.
package units

import (
	"fmt"
	"math"
)

// Converter maps between physical SI quantities and lattice units.
type Converter struct {
	// Dx is the physical size of one lattice cell in meters.
	Dx float64
	// Dt is the physical duration of one time step in seconds.
	Dt float64
	// Rho is the physical density of one lattice density unit in kg/m^3.
	Rho float64
}

// NewConverter builds a converter from resolution, time step and
// reference density.
func NewConverter(dx, dt, rho float64) (Converter, error) {
	if dx <= 0 || dt <= 0 || rho <= 0 {
		return Converter{}, fmt.Errorf("units: dx, dt, rho must be positive (got %g, %g, %g)", dx, dt, rho)
	}
	return Converter{Dx: dx, Dt: dt, Rho: rho}, nil
}

// FromVelocity picks the time step so that the given peak physical
// velocity maps to the given lattice velocity (the stability headroom):
//
//	dt = u_lattice * dx / u_physical.
//
// With u_lattice = 0.1, u_physical = 0.2 m/s and dx = 1.276 um this is
// the paper's 0.64 us time step ("the time step length computes to half
// the spatial resolution" — in units of dx per second).
func FromVelocity(dx, peakPhysicalVelocity, latticeVelocity, rho float64) (Converter, error) {
	if peakPhysicalVelocity <= 0 || latticeVelocity <= 0 {
		return Converter{}, fmt.Errorf("units: velocities must be positive")
	}
	return NewConverter(dx, latticeVelocity*dx/peakPhysicalVelocity, rho)
}

// Velocity converts a lattice velocity to m/s.
func (c Converter) Velocity(u float64) float64 { return u * c.Dx / c.Dt }

// LatticeVelocity converts a physical velocity (m/s) to lattice units.
func (c Converter) LatticeVelocity(v float64) float64 { return v * c.Dt / c.Dx }

// Viscosity converts a lattice kinematic viscosity to m^2/s.
func (c Converter) Viscosity(nu float64) float64 { return nu * c.Dx * c.Dx / c.Dt }

// LatticeViscosity converts a physical kinematic viscosity (m^2/s) to
// lattice units.
func (c Converter) LatticeViscosity(nu float64) float64 { return nu * c.Dt / (c.Dx * c.Dx) }

// TauForViscosity returns the relaxation time realizing the physical
// kinematic viscosity at this discretization: tau = 3 nu_lat + 1/2.
func (c Converter) TauForViscosity(nuPhysical float64) float64 {
	return 3*c.LatticeViscosity(nuPhysical) + 0.5
}

// Time converts a number of time steps to seconds.
func (c Converter) Time(steps int) float64 { return float64(steps) * c.Dt }

// Pressure converts a lattice pressure difference (c_s^2 * delta rho) to
// pascals.
func (c Converter) Pressure(dRhoLattice float64) float64 {
	cs2 := c.Dx * c.Dx / (c.Dt * c.Dt) / 3.0
	return dRhoLattice * c.Rho * cs2
}

// Density converts a lattice density to kg/m^3.
func (c Converter) Density(rho float64) float64 { return rho * c.Rho }

// Reynolds computes the Reynolds number of a flow with characteristic
// length L (in cells) and velocity u (lattice units) at relaxation time
// tau — dimensionless, so it is the same in both unit systems.
func Reynolds(lCells, uLattice, tau float64) float64 {
	nu := (tau - 0.5) / 3.0
	return lCells * uLattice / nu
}

// SimulatedSecondsPerWallSecond returns how much physical time a run at
// the given time stepping rate covers per second of wall clock — the
// paper's real-time criterion (1.25 steps/s at 0.64 us steps is deep
// sub-real-time; 6638 steps/s at a 0.1 mm resolution approaches
// practical use).
func (c Converter) SimulatedSecondsPerWallSecond(stepsPerSecond float64) float64 {
	return stepsPerSecond * c.Dt
}

// StabilityCheck reports whether a lattice velocity is inside the
// commonly stable range of the method (the paper: "our method is stable
// up to a lattice velocity of 0.1").
func StabilityCheck(uLattice float64) error {
	if math.Abs(uLattice) > 0.1 {
		return fmt.Errorf("units: lattice velocity %g exceeds the stable bound 0.1", uLattice)
	}
	return nil
}
