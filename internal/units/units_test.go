package units

import (
	"math"
	"testing"
)

// The paper's section 4.3 arithmetic: 1.276 um resolution, 0.2 m/s peak
// blood velocity, stability up to lattice velocity 0.1 -> 0.64 us time
// step ("half the spatial resolution"), and 1.25 simulated steps per
// second on the full machine means 0.8 us of blood flow per wall second.
func TestPaperTimeStepArithmetic(t *testing.T) {
	c, err := FromVelocity(1.276e-6, 0.2, 0.1, 1060)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Dt-0.638e-6) > 1e-12 {
		t.Errorf("dt = %v, want 0.638e-6 (the paper's 0.64 us)", c.Dt)
	}
	// "the time step length computes to half the spatial resolution":
	// dt [s] = dx [m] / 2 numerically in these units.
	if math.Abs(c.Dt-c.Dx/2) > 1e-15 {
		t.Errorf("dt %v != dx/2 %v", c.Dt, c.Dx/2)
	}
	simPerWall := c.SimulatedSecondsPerWallSecond(1.25)
	if math.Abs(simPerWall-0.798e-6) > 1e-9 {
		t.Errorf("simulated time per wall second = %v, want ~0.8 us", simPerWall)
	}
	// The strong scaling regime: 6638 steps/s at 0.1 mm and the same
	// velocity mapping covers ~0.33 s of flow per wall second — the
	// "practical real-time" statement of the conclusion.
	c2, _ := FromVelocity(0.1e-3, 0.2, 0.1, 1060)
	rt := c2.SimulatedSecondsPerWallSecond(6638)
	if rt < 0.2 || rt > 0.5 {
		t.Errorf("0.1mm real-time factor %v, want ~0.33", rt)
	}
}

func TestVelocityRoundTrip(t *testing.T) {
	c, _ := NewConverter(1e-4, 5e-5, 1000)
	u := 0.05
	if got := c.LatticeVelocity(c.Velocity(u)); math.Abs(got-u) > 1e-15 {
		t.Errorf("velocity round trip %v -> %v", u, got)
	}
	if c.Velocity(0.1) != 0.1*1e-4/5e-5 {
		t.Errorf("Velocity wrong: %v", c.Velocity(0.1))
	}
}

func TestViscosityAndTau(t *testing.T) {
	// Blood plasma-like kinematic viscosity ~3.3e-6 m^2/s at a coarse
	// hemodynamic discretization.
	c, _ := NewConverter(1e-4, 1e-5, 1060)
	nuPhys := 3.3e-6
	nuLat := c.LatticeViscosity(nuPhys)
	if math.Abs(c.Viscosity(nuLat)-nuPhys) > 1e-18 {
		t.Error("viscosity round trip failed")
	}
	tau := c.TauForViscosity(nuPhys)
	if tau <= 0.5 {
		t.Errorf("tau = %v unstable", tau)
	}
	if math.Abs((tau-0.5)/3.0-nuLat) > 1e-15 {
		t.Errorf("tau-viscosity relation broken: tau=%v nuLat=%v", tau, nuLat)
	}
}

func TestPressureAndDensity(t *testing.T) {
	c, _ := NewConverter(1e-3, 1e-4, 1000)
	if c.Density(1.05) != 1050 {
		t.Errorf("Density = %v", c.Density(1.05))
	}
	// Pressure from a 1% density excess: rho * cs2 * 0.01.
	cs2 := 1e-3 * 1e-3 / (1e-4 * 1e-4) / 3.0
	want := 0.01 * 1000 * cs2
	if math.Abs(c.Pressure(0.01)-want) > 1e-9 {
		t.Errorf("Pressure = %v, want %v", c.Pressure(0.01), want)
	}
}

func TestReynolds(t *testing.T) {
	// Re = L u / nu with nu = (tau-1/2)/3.
	re := Reynolds(100, 0.05, 0.8)
	want := 100 * 0.05 / 0.1
	if math.Abs(re-want) > 1e-12 {
		t.Errorf("Re = %v, want %v", re, want)
	}
}

func TestStabilityCheck(t *testing.T) {
	if err := StabilityCheck(0.05); err != nil {
		t.Errorf("0.05 flagged unstable: %v", err)
	}
	if err := StabilityCheck(0.15); err == nil {
		t.Error("0.15 accepted")
	}
	if err := StabilityCheck(-0.2); err == nil {
		t.Error("-0.2 accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewConverter(0, 1, 1); err == nil {
		t.Error("dx=0 accepted")
	}
	if _, err := FromVelocity(1e-6, 0, 0.1, 1000); err == nil {
		t.Error("zero velocity accepted")
	}
	if _, err := FromVelocity(1e-6, 0.2, -0.1, 1000); err == nil {
		t.Error("negative lattice velocity accepted")
	}
}

func TestTime(t *testing.T) {
	c, _ := NewConverter(1e-6, 2e-7, 1000)
	if math.Abs(c.Time(500)-1e-4) > 1e-18 {
		t.Errorf("Time(500) = %v", c.Time(500))
	}
}
