package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Chrome-trace export: writes the recorded spans in the Chrome Trace
// Event Format (the JSON object form, {"traceEvents": [...]}), loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Ranks map to
// processes, lanes to threads; duration phases become complete ("X")
// events, instant phases become thread-scoped instant ("i") events.

// WriteChrome writes the whole trace. Only safe once the runs feeding
// the tracers have finished.
func (tr *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	for _, t := range tr.Tracers() {
		if err := t.writeChromeEvents(bw, &first); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeFile writes the trace to path.
func (tr *Trace) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChrome writes a standalone tracer (one rank) as a full trace
// document.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	if err := t.writeChromeEvents(bw, &first); err != nil {
		return err
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func (t *Tracer) writeChromeEvents(bw *bufio.Writer, first *bool) error {
	if t == nil {
		return nil
	}
	sep := func() error {
		if *first {
			*first = false
			return nil
		}
		_, err := bw.WriteString(",\n")
		return err
	}
	// Metadata: name the process after the rank and each thread after its
	// lane, and pin thread sort order to lane ids (driver on top).
	if err := sep(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw,
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}}`,
		t.rank, t.rank); err != nil {
		return err
	}
	for _, l := range t.lanes {
		if err := sep(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			t.rank, l.id, l.name); err != nil {
			return err
		}
		if err := sep(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			t.rank, l.id, l.id); err != nil {
			return err
		}
	}
	var werr error
	for _, l := range t.lanes {
		lane := l
		lane.Each(func(s Span) {
			if werr != nil {
				return
			}
			if werr = sep(); werr != nil {
				return
			}
			info := phaseTable[s.Phase]
			// Timestamps are microseconds in the trace format; floats keep
			// the nanosecond resolution.
			ts := float64(s.Start) / 1e3
			if info.instant {
				_, werr = fmt.Fprintf(bw,
					`{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"step":%d,"%s":%d}}`,
					info.name, ts, t.rank, lane.id, s.Step, argKey(info), s.Arg)
				return
			}
			dur := float64(s.End-s.Start) / 1e3
			if info.argName != "" {
				_, werr = fmt.Fprintf(bw,
					`{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"step":%d,"%s":%d}}`,
					info.name, ts, dur, t.rank, lane.id, s.Step, info.argName, s.Arg)
			} else {
				_, werr = fmt.Fprintf(bw,
					`{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"step":%d}}`,
					info.name, ts, dur, t.rank, lane.id, s.Step)
			}
		})
		if werr != nil {
			return werr
		}
	}
	return nil
}

func argKey(info phaseInfo) string {
	if info.argName != "" {
		return info.argName
	}
	return "arg"
}
