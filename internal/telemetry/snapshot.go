package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshots: point-in-time copies of a registry's metrics, mergeable
// across ranks and exportable as JSON or CSV. Snapshotting reads the
// atomics without stopping writers, so a snapshot taken mid-run (the HTTP
// endpoint) is internally slightly torn but each value is valid.

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot, with bucket-interpolated
// quantiles in nanoseconds.
type HistogramValue struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P90Ns   float64 `json:"p90_ns"`
	P99Ns   float64 `json:"p99_ns"`
	buckets [histogramBuckets]int64
}

// Snapshot is one registry's state at a point in time.
type Snapshot struct {
	Rank       int              `json:"rank"`
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current state; rank tags the snapshot
// for multi-rank merges. Nil-safe (returns an empty snapshot).
func (r *Registry) Snapshot(rank int) Snapshot {
	s := Snapshot{Rank: rank}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		hv := HistogramValue{
			Name:   name,
			Count:  h.Count(),
			SumNs:  h.SumNs(),
			MeanNs: h.MeanNs(),
			P50Ns:  h.quantileNs(0.50),
			P90Ns:  h.quantileNs(0.90),
			P99Ns:  h.quantileNs(0.99),
		}
		for i := range hv.buckets {
			hv.buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// Counter returns the named counter's value in the snapshot (0 when
// absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value in the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Merge combines per-rank snapshots into one aggregate (rank -1):
// counters and histogram bucket contents sum; gauges take the maximum
// over ranks (gauges describe rank-local levels — queue depths,
// imbalance factors — whose global view is the worst rank).
func Merge(snaps []Snapshot) Snapshot {
	out := Snapshot{Rank: -1}
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]*HistogramValue{}
	var corder, gorder, horder []string
	for _, s := range snaps {
		for _, c := range s.Counters {
			if _, ok := counters[c.Name]; !ok {
				corder = append(corder, c.Name)
			}
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			if _, ok := gauges[g.Name]; !ok {
				gorder = append(gorder, g.Name)
				gauges[g.Name] = g.Value
			} else if g.Value > gauges[g.Name] {
				gauges[g.Name] = g.Value
			}
		}
		for _, h := range s.Histograms {
			m := hists[h.Name]
			if m == nil {
				m = &HistogramValue{Name: h.Name}
				hists[h.Name] = m
				horder = append(horder, h.Name)
			}
			m.Count += h.Count
			m.SumNs += h.SumNs
			for i := range m.buckets {
				m.buckets[i] += h.buckets[i]
			}
		}
	}
	for _, name := range corder {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: counters[name]})
	}
	for _, name := range gorder {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: gauges[name]})
	}
	for _, name := range horder {
		m := hists[name]
		if m.Count > 0 {
			m.MeanNs = float64(m.SumNs) / float64(m.Count)
		}
		h := bucketsToHistogram(m.buckets)
		m.P50Ns = h.quantileNs(0.50)
		m.P90Ns = h.quantileNs(0.90)
		m.P99Ns = h.quantileNs(0.99)
		out.Histograms = append(out.Histograms, *m)
	}
	return out
}

// bucketsToHistogram rebuilds a Histogram from merged bucket counts so
// the quantile interpolation can be reused.
func bucketsToHistogram(buckets [histogramBuckets]int64) *Histogram {
	h := &Histogram{}
	var total int64
	for i, n := range buckets {
		h.buckets[i].Store(n)
		total += n
	}
	h.count.Store(total)
	return h
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as "kind,name,value[,mean_ns,p50_ns,
// p90_ns,p99_ns]" lines with one header.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,name,value,mean_ns,p50_ns,p90_ns,p99_ns"); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter,%s,%d,,,,\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge,%s,%g,,,,\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram,%s,%d,%.0f,%.0f,%.0f,%.0f\n",
			h.Name, h.Count, h.MeanNs, h.P50Ns, h.P90Ns, h.P99Ns); err != nil {
			return err
		}
	}
	return nil
}
