package telemetry

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"
)

// Expvar-style HTTP endpoint: serves live JSON snapshots of registered
// registries while a run is in flight. The handler snapshots atomics
// without pausing writers, so responses are cheap and safe mid-step.

// MetricsServer serves metric snapshots over HTTP.
//
//	GET /metrics         merged snapshot across all registered ranks
//	GET /metrics/ranks   array of per-rank snapshots
type MetricsServer struct {
	mu    sync.Mutex
	regs  []*Registry
	ranks []int
	srv   *http.Server
	done  chan struct{} // closed when the serve goroutine has fully exited
}

// NewMetricsServer builds an empty server; attach registries with
// Register, then Serve or ServeContext.
func NewMetricsServer() *MetricsServer { return &MetricsServer{} }

// Register attaches one rank's registry. Safe to call concurrently from
// SPMD rank goroutines, also while serving.
func (s *MetricsServer) Register(rank int, r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.regs = append(s.regs, r)
	s.ranks = append(s.ranks, rank)
	s.mu.Unlock()
}

func (s *MetricsServer) snapshots() []Snapshot {
	s.mu.Lock()
	regs := append([]*Registry(nil), s.regs...)
	ranks := append([]int(nil), s.ranks...)
	s.mu.Unlock()
	snaps := make([]Snapshot, len(regs))
	for i, r := range regs {
		snaps[i] = r.Snapshot(ranks[i])
	}
	return snaps
}

// ServeHTTP implements http.Handler.
func (s *MetricsServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch req.URL.Path {
	case "/", "/metrics":
		Merge(s.snapshots()).WriteJSON(w)
	case "/metrics/ranks":
		w.Write([]byte("[\n"))
		for i, snap := range s.snapshots() {
			if i > 0 {
				w.Write([]byte(",\n"))
			}
			snap.WriteJSON(w)
		}
		w.Write([]byte("]\n"))
	default:
		http.NotFound(w, req)
	}
}

// Serve starts listening on addr (e.g. "localhost:6060"; ":0" picks an
// ephemeral port) and serves in a background goroutine until Close.
// Returns the bound address.
func (s *MetricsServer) Serve(addr string) (string, error) {
	return s.ServeContext(context.Background(), addr)
}

// ServeContext is Serve bound to a context: when ctx is cancelled the
// server drains exactly as in Close. Either way the serve goroutine is
// fully accounted for — Close (idempotent, safe after cancellation)
// returns only once it has exited, so callers never leak it.
func (s *MetricsServer) ServeContext(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s}
	done := make(chan struct{})
	s.mu.Lock()
	s.srv = srv
	s.done = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.shutdown(srv)
			case <-done:
			}
		}()
	}
	return ln.Addr().String(), nil
}

// shutdown drains srv: graceful with a bounded deadline, then forced, so
// a stuck client cannot hold the process open.
func (s *MetricsServer) shutdown(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if srv.Shutdown(ctx) != nil {
		srv.Close()
	}
}

// Close stops the server started by Serve/ServeContext, draining in-flight
// requests, and returns once the serve goroutine has exited. Idempotent;
// a nil or never-served server is a no-op.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.done = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	s.shutdown(srv)
	<-done
	return nil
}
