package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Expvar-style HTTP endpoint: serves live JSON snapshots of registered
// registries while a run is in flight. The handler snapshots atomics
// without pausing writers, so responses are cheap and safe mid-step.

// MetricsServer serves metric snapshots over HTTP.
//
//	GET /metrics           merged snapshot across all registered ranks
//	GET /metrics/ranks     array of per-rank snapshots
//	GET /metrics/sessions  object of per-label merged snapshots (the
//	                       session daemon labels each session's ranks)
type MetricsServer struct {
	mu   sync.Mutex
	regs []metricsEntry
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine has fully exited
}

type metricsEntry struct {
	label string
	rank  int
	reg   *Registry
}

// NewMetricsServer builds an empty server; attach registries with
// Register/RegisterLabeled, then Serve or ServeContext.
func NewMetricsServer() *MetricsServer { return &MetricsServer{} }

// Register attaches one rank's registry. Safe to call concurrently from
// SPMD rank goroutines, also while serving.
func (s *MetricsServer) Register(rank int, r *Registry) {
	s.RegisterLabeled("", rank, r)
}

// RegisterLabeled attaches one rank's registry under a label — the
// session daemon registers every session rank under the session ID, so
// /metrics/sessions streams per-session aggregates while /metrics keeps
// the fleet-wide view. Safe to call concurrently, also while serving.
func (s *MetricsServer) RegisterLabeled(label string, rank int, r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.regs = append(s.regs, metricsEntry{label: label, rank: rank, reg: r})
	s.mu.Unlock()
}

// UnregisterLabeled detaches every registry registered under the label
// (a destroyed or suspended session drops out of the metrics surface).
func (s *MetricsServer) UnregisterLabeled(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	kept := s.regs[:0]
	for _, e := range s.regs {
		if e.label != label {
			kept = append(kept, e)
		}
	}
	s.regs = kept
	s.mu.Unlock()
}

func (s *MetricsServer) entries() []metricsEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]metricsEntry(nil), s.regs...)
}

func (s *MetricsServer) snapshots() []Snapshot {
	entries := s.entries()
	snaps := make([]Snapshot, len(entries))
	for i, e := range entries {
		snaps[i] = e.reg.Snapshot(e.rank)
	}
	return snaps
}

// ServeHTTP implements http.Handler.
func (s *MetricsServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch req.URL.Path {
	case "/", "/metrics":
		Merge(s.snapshots()).WriteJSON(w)
	case "/metrics/ranks":
		w.Write([]byte("[\n"))
		for i, snap := range s.snapshots() {
			if i > 0 {
				w.Write([]byte(",\n"))
			}
			snap.WriteJSON(w)
		}
		w.Write([]byte("]\n"))
	case "/metrics/sessions":
		byLabel := map[string][]Snapshot{}
		for _, e := range s.entries() {
			if e.label == "" {
				continue
			}
			byLabel[e.label] = append(byLabel[e.label], e.reg.Snapshot(e.rank))
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		w.Write([]byte("{\n"))
		for i, l := range labels {
			if i > 0 {
				w.Write([]byte(",\n"))
			}
			key, _ := json.Marshal(l)
			w.Write(key)
			w.Write([]byte(": "))
			Merge(byLabel[l]).WriteJSON(w)
		}
		w.Write([]byte("}\n"))
	default:
		http.NotFound(w, req)
	}
}

// Serve starts listening on addr (e.g. "localhost:6060"; ":0" picks an
// ephemeral port) and serves in a background goroutine until Close.
// Returns the bound address.
func (s *MetricsServer) Serve(addr string) (string, error) {
	return s.ServeContext(context.Background(), addr)
}

// ServeContext is Serve bound to a context: when ctx is cancelled the
// server drains exactly as in Close. Either way the serve goroutine is
// fully accounted for — Close (idempotent, safe after cancellation)
// returns only once it has exited, so callers never leak it.
func (s *MetricsServer) ServeContext(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s}
	done := make(chan struct{})
	s.mu.Lock()
	s.srv = srv
	s.done = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.shutdown(srv)
			case <-done:
			}
		}()
	}
	return ln.Addr().String(), nil
}

// shutdown drains srv: graceful with a bounded deadline, then forced, so
// a stuck client cannot hold the process open.
func (s *MetricsServer) shutdown(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if srv.Shutdown(ctx) != nil {
		srv.Close()
	}
}

// Close stops the server started by Serve/ServeContext, draining in-flight
// requests, and returns once the serve goroutine has exited. Idempotent;
// a nil or never-served server is a no-op.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.done = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	s.shutdown(srv)
	<-done
	return nil
}
