package telemetry

import (
	"net"
	"net/http"
	"sync"
)

// Expvar-style HTTP endpoint: serves live JSON snapshots of registered
// registries while a run is in flight. The handler snapshots atomics
// without pausing writers, so responses are cheap and safe mid-step.

// MetricsServer serves metric snapshots over HTTP.
//
//	GET /metrics         merged snapshot across all registered ranks
//	GET /metrics/ranks   array of per-rank snapshots
type MetricsServer struct {
	mu    sync.Mutex
	regs  []*Registry
	ranks []int
	ln    net.Listener
}

// NewMetricsServer builds an empty server; attach registries with
// Register, then Serve.
func NewMetricsServer() *MetricsServer { return &MetricsServer{} }

// Register attaches one rank's registry. Safe to call concurrently from
// SPMD rank goroutines, also while serving.
func (s *MetricsServer) Register(rank int, r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.regs = append(s.regs, r)
	s.ranks = append(s.ranks, rank)
	s.mu.Unlock()
}

func (s *MetricsServer) snapshots() []Snapshot {
	s.mu.Lock()
	regs := append([]*Registry(nil), s.regs...)
	ranks := append([]int(nil), s.ranks...)
	s.mu.Unlock()
	snaps := make([]Snapshot, len(regs))
	for i, r := range regs {
		snaps[i] = r.Snapshot(ranks[i])
	}
	return snaps
}

// ServeHTTP implements http.Handler.
func (s *MetricsServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch req.URL.Path {
	case "/", "/metrics":
		Merge(s.snapshots()).WriteJSON(w)
	case "/metrics/ranks":
		w.Write([]byte("[\n"))
		for i, snap := range s.snapshots() {
			if i > 0 {
				w.Write([]byte(",\n"))
			}
			snap.WriteJSON(w)
		}
		w.Write([]byte("]\n"))
	default:
		http.NotFound(w, req)
	}
}

// Serve starts listening on addr (e.g. "localhost:6060"; ":0" picks an
// ephemeral port) and serves in a background goroutine. Returns the
// bound address.
func (s *MetricsServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go http.Serve(ln, s) //nolint:errcheck // closed by Close
	return ln.Addr().String(), nil
}

// Close stops the listener started by Serve.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Close()
}
