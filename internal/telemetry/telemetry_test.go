package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLaneRecordsSpans(t *testing.T) {
	tr := NewTracer(3, 2, 16)
	l := tr.Driver()
	s0 := l.Start()
	time.Sleep(time.Millisecond)
	l.Span(PhaseStep, 7, 0, s0)
	l.Instant(PhaseFaultDrop, 7, 1)

	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	var spans []Span
	l.Each(func(s Span) { spans = append(spans, s) })
	if spans[0].Phase != PhaseStep || spans[0].Step != 7 {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[0].End <= spans[0].Start {
		t.Fatalf("span has non-positive duration: %+v", spans[0])
	}
	if spans[1].Phase != PhaseFaultDrop || spans[1].Start != spans[1].End {
		t.Fatalf("instant span = %+v", spans[1])
	}
	if l.BusyNs() <= 0 {
		t.Fatalf("BusyNs = %d, want > 0", l.BusyNs())
	}
}

func TestLaneRingWrap(t *testing.T) {
	tr := NewTracer(0, 0, 4)
	l := tr.Driver()
	for i := 0; i < 10; i++ {
		l.put(Span{Phase: PhaseStep, Step: int32(i)})
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	var steps []int32
	l.Each(func(s Span) { steps = append(steps, s.Step) })
	want := []int32{6, 7, 8, 9}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("retained steps = %v, want %v", steps, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var l *Lane
	var tr *Tracer
	var trace *Trace
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry

	l.Span(PhaseStep, 0, 0, l.Start())
	l.Instant(PhaseFaultDrop, 0, 0)
	l.Each(func(Span) { t.Fatal("nil lane has spans") })
	if l.Len() != 0 || l.BusyNs() != 0 || l.Dropped() != 0 || l.Name() != "" {
		t.Fatal("nil lane reports state")
	}
	if tr.Lane(0) != nil || tr.Driver() != nil || tr.Worker(0) != nil {
		t.Fatal("nil tracer hands out lanes")
	}
	if tr.Rank() != -1 || tr.LoadImbalance() != 0 || tr.Lanes() != nil {
		t.Fatal("nil tracer reports state")
	}
	if trace.NewTracer(0, 1, 0) != nil || trace.Tracers() != nil {
		t.Fatal("nil trace hands out tracers")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.MeanNs() != 0 {
		t.Fatal("nil metrics report state")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry hands out metrics")
	}
	snap := r.Snapshot(0)
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestTracerLanesAndImbalance(t *testing.T) {
	tr := NewTracer(0, 4, 8)
	if tr.Driver().Name() != "driver" {
		t.Fatalf("driver name = %q", tr.Driver().Name())
	}
	if tr.Worker(2).Name() != "worker 2" {
		t.Fatalf("worker name = %q", tr.Worker(2).Name())
	}
	if tr.Worker(4) != nil || tr.Lane(-1) != nil {
		t.Fatal("out-of-range lane not nil")
	}
	// Synthesize busy time: workers 0..2 busy 100ns, worker 3 busy 200ns.
	for k := 0; k < 4; k++ {
		tr.Worker(k).busy = 100
	}
	tr.Worker(3).busy = 200
	// mean = 125, max = 200 -> 1.6
	if got := tr.LoadImbalance(); got < 1.59 || got > 1.61 {
		t.Fatalf("LoadImbalance = %v, want 1.6", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("comm.sends")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("comm.sends") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("pool.depth")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("comm.recv_wait")
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond) // 1000 ns, bucket floor 512, ceil 1024
	}
	if h.Count() != 100 || h.SumNs() != 100_000 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.SumNs())
	}
	if h.MeanNs() != 1000 {
		t.Fatalf("mean = %v", h.MeanNs())
	}
	p50 := h.quantileNs(0.5)
	if p50 < 512 || p50 > 1024 {
		t.Fatalf("p50 = %v, want within [512,1024]", p50)
	}
	// Negative durations clamp to zero instead of corrupting buckets.
	h2 := r.Histogram("neg")
	h2.Observe(-time.Second)
	if h2.SumNs() != 0 || h2.Count() != 1 {
		t.Fatalf("negative observe: sum=%d count=%d", h2.SumNs(), h2.Count())
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	r0 := NewRegistry()
	r0.Counter("comm.sends").Add(10)
	r0.Gauge("imbalance").Set(1.2)
	r0.Histogram("wait").Observe(time.Millisecond)
	r1 := NewRegistry()
	r1.Counter("comm.sends").Add(5)
	r1.Gauge("imbalance").Set(1.7)
	r1.Histogram("wait").Observe(3 * time.Millisecond)

	s0 := r0.Snapshot(0)
	s1 := r1.Snapshot(1)
	if s0.Counter("comm.sends") != 10 || s0.Gauge("imbalance") != 1.2 {
		t.Fatalf("snapshot 0 = %+v", s0)
	}
	if s0.Counter("missing") != 0 || s0.Gauge("missing") != 0 {
		t.Fatal("missing metrics not zero")
	}

	m := Merge([]Snapshot{s0, s1})
	if m.Rank != -1 {
		t.Fatalf("merged rank = %d", m.Rank)
	}
	if m.Counter("comm.sends") != 15 {
		t.Fatalf("merged counter = %d", m.Counter("comm.sends"))
	}
	if m.Gauge("imbalance") != 1.7 {
		t.Fatalf("merged gauge = %v (want max)", m.Gauge("imbalance"))
	}
	if len(m.Histograms) != 1 {
		t.Fatalf("merged histograms = %d", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 2 || h.SumNs != int64(4*time.Millisecond) {
		t.Fatalf("merged hist = %+v", h)
	}
	if h.MeanNs != float64(2*time.Millisecond) {
		t.Fatalf("merged mean = %v", h.MeanNs)
	}
	if h.P99Ns <= h.P50Ns {
		t.Fatalf("merged quantiles not ordered: p50=%v p99=%v", h.P50Ns, h.P99Ns)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("snapshot JSON invalid")
	}
	buf.Reset()
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 1 counter + 1 gauge + 1 histogram
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "kind,name,value") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestChromeExport(t *testing.T) {
	trace := NewTrace()
	for rank := 0; rank < 2; rank++ {
		tr := trace.NewTracer(rank, 2, 32)
		d := tr.Driver()
		s := d.Start()
		d.Span(PhaseStep, 0, 0, s)
		w := tr.Worker(0)
		s = w.Start()
		w.Span(PhaseCollideStream, 0, 5, s)
		d.Instant(PhaseRankFailed, 0, 1)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace JSON invalid:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
		case "i":
			instant++
			if ev["s"] != "t" {
				t.Fatalf("instant event missing thread scope: %v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
	}
	// Per rank: 1 process_name + 3 lanes x (thread_name + sort) = 7.
	if meta != 14 {
		t.Fatalf("metadata events = %d, want 14", meta)
	}
	if complete != 4 || instant != 2 {
		t.Fatalf("complete=%d instant=%d, want 4/2", complete, instant)
	}
	// Single-rank export is also a valid document.
	buf.Reset()
	if err := trace.Tracers()[0].WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("single-tracer chrome JSON invalid")
	}
}

func TestMetricsServer(t *testing.T) {
	srv := NewMetricsServer()
	for rank := 0; rank < 2; rank++ {
		r := NewRegistry()
		r.Counter("comm.sends").Add(int64(10 * (rank + 1)))
		srv.Register(rank, r)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var merged Snapshot
	if err := json.Unmarshal(get("/metrics"), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Counter("comm.sends") != 30 {
		t.Fatalf("merged sends = %d, want 30", merged.Counter("comm.sends"))
	}
	var ranks []Snapshot
	if err := json.Unmarshal(get("/metrics/ranks"), &ranks); err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[1].Counter("comm.sends") != 20 {
		t.Fatalf("per-rank snapshots = %+v", ranks)
	}
	resp, err := http.Get("http://" + addr + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: %s", resp.Status)
	}
}

func TestRooflineReport(t *testing.T) {
	in := RooflineInput{
		FluidUpdates:  50e6 * 2.0, // 100 MLUP over 2s
		WallSeconds:   2.0,
		KernelSeconds: 1.6,
		PhaseSecondsByName: map[string]float64{
			"interior-sweep": 1.4,
			"exchange-wait":  0.3,
			"exchange-post":  0.2,
		},
		Cores:   4,
		SMTWays: 1,
	}
	r := BuildRooflineReport(in)
	if r.MeasuredMLUPS < 49.9 || r.MeasuredMLUPS > 50.1 {
		t.Fatalf("measured = %v, want 50", r.MeasuredMLUPS)
	}
	if r.KernelMLUPS < 62.4 || r.KernelMLUPS > 62.6 {
		t.Fatalf("kernel = %v, want 62.5", r.KernelMLUPS)
	}
	if r.PredictedMLUPS <= 0 || r.RooflineMLUPS <= 0 {
		t.Fatalf("model values missing: %+v", r)
	}
	if r.ModelEfficiency <= 0 {
		t.Fatalf("efficiency = %v", r.ModelEfficiency)
	}
	// Phases sorted by descending time.
	if len(r.Phases) != 3 || r.Phases[0].Name != "interior-sweep" {
		t.Fatalf("phases = %+v", r.Phases)
	}
	if r.Phases[0].Share < 0.69 || r.Phases[0].Share > 0.71 {
		t.Fatalf("share = %v", r.Phases[0].Share)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "roofline comparison") {
		t.Fatalf("text report:\n%s", buf.String())
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	tr := NewTracer(0, 1, 64)
	l := tr.Driver()
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(200, func() {
		s := l.Start()
		l.Span(PhaseStep, 1, 2, s)
		l.Instant(PhaseFaultDrop, 1, 2)
		c.Add(3)
		g.Set(1.5)
		h.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
	// Disabled (nil) fast path must not allocate either.
	var nl *Lane
	var nc *Counter
	var nh *Histogram
	allocs = testing.AllocsPerRun(200, func() {
		s := nl.Start()
		nl.Span(PhaseStep, 1, 2, s)
		nc.Add(3)
		nh.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("nil fast path allocates: %v allocs/op", allocs)
	}
}

func TestPhaseNames(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseTable[p].name == "" {
			t.Fatalf("phase %d has no name", p)
		}
		if p.String() == "?" {
			t.Fatalf("phase %d String() = ?", p)
		}
	}
	if Phase(200).String() != "?" {
		t.Fatal("out-of-range phase name")
	}
	for i := 0; i < 25; i++ {
		want := fmt.Sprintf("%d", i)
		if got := itoa(i); got != want {
			t.Fatalf("itoa(%d) = %q", i, got)
		}
	}
}
