// Package telemetry is the runtime observability layer of the framework:
// per-rank, per-worker span tracing into preallocated ring buffers, a
// counters/gauges/histograms metrics registry, and exporters for both —
// Chrome-trace/Perfetto JSON for the spans, JSON/CSV snapshots and an
// expvar-style HTTP endpoint for the metrics, plus a report comparing
// measured per-phase performance against the perfmodel roofline
// predictions (the paper's node-level validation, produced live by the
// running binary instead of offline analysis).
//
// Design constraints (see docs/TELEMETRY.md):
//
//   - Zero allocations on the hot path. Every span lands in a ring buffer
//     preallocated at tracer construction; every counter/histogram update
//     is a single atomic operation on preregistered state. A steady-state
//     simulation step records dozens of spans and updates without a single
//     heap allocation (asserted by TestStepZeroAllocTraced).
//   - Nil-check fast path. All recording methods are nil-safe: a disabled
//     tracer or registry is simply a nil pointer, and the instrumentation
//     costs exactly one predictable branch per call site.
//   - Single-writer lanes. Each lane is owned by one goroutine at a time
//     (the rank's driver, or worker k of a fork-join parallel region,
//     whose join happens-before the next region); no recording path takes
//     a lock. Exporting a trace is only safe after the runs that fed it
//     have finished.
package telemetry

import (
	"sync"
	"time"
)

// Phase identifies what a span measures. The set is closed so spans carry
// one byte instead of a string, keeping the hot path free of interning;
// the exporter maps phases back to names via phaseTable.
type Phase uint8

// Span phases of the simulation pipeline, the communication runtime and
// the resilience stack.
const (
	// PhaseStep is one full time step on the rank's driver goroutine.
	PhaseStep Phase = iota
	// PhaseExchangePost is the first exchange half: pack, send, local
	// copies, receive posts.
	PhaseExchangePost
	// PhaseInteriorSweep covers the interior block sweeps that overlap the
	// in-flight communication.
	PhaseInteriorSweep
	// PhaseExchangeWait is the residual wait for remote ghost data plus
	// its unpack — the communication the overlap could not hide.
	PhaseExchangeWait
	// PhaseFrontierSweep covers the frontier block sweeps that needed the
	// remote data.
	PhaseFrontierSweep
	// PhaseBoundary is one block's boundary handling on a worker lane.
	PhaseBoundary
	// PhaseCollideStream is one block's fused stream-collide kernel sweep
	// (plus body forcing) on a worker lane.
	PhaseCollideStream
	// PhasePack is one pack task (one boundary slab into an aggregate
	// window) on a worker lane.
	PhasePack
	// PhaseUnpack is one unpack task on a worker lane.
	PhaseUnpack
	// PhaseLocalCopy is one same-rank block-to-block ghost copy.
	PhaseLocalCopy
	// PhaseSend is one point-to-point send, including any backpressure
	// wait on a depth-bounded destination mailbox. Arg is the destination
	// world rank.
	PhaseSend
	// PhaseRecv is one blocking receive (or nonblocking completion). Arg
	// is the source world rank, -1 for wildcard receives.
	PhaseRecv
	// PhaseBarrier is one barrier collective.
	PhaseBarrier
	// PhaseCheckpoint is one coordinated disk checkpoint set
	// contribution.
	PhaseCheckpoint
	// PhaseReplicate is one buddy-replication generation (own snapshot,
	// encode, exchange with the buddy rank).
	PhaseReplicate
	// PhaseRecovery spans a whole recovery: backoff, rendezvous and state
	// restore, up to the simulation being ready to step again.
	PhaseRecovery
	// PhaseRestore is the state-restore part of a recovery alone.
	PhaseRestore
	// PhaseShrink is the communicator shrink plus block adoption of a
	// shrinking recovery.
	PhaseShrink
	// PhaseHeal is the world re-grow plus state streaming of a healing
	// recovery: recruit a spare, vote, forward the dead rank's blocks and
	// rebuild the topology at full size.
	PhaseHeal
	// PhaseFaultDrop marks a send discarded by fault injection (instant).
	PhaseFaultDrop
	// PhaseFaultDelay marks a send deferred by fault injection (instant).
	PhaseFaultDelay
	// PhaseRankFailed marks a declared rank failure (instant). Arg is the
	// accused world rank.
	PhaseRankFailed
	// PhaseNetConnect marks an established socket-transport connection
	// (instant). Arg is the peer world rank.
	PhaseNetConnect
	// PhaseNetReconnect marks a torn-down socket connection being redialed
	// or re-accepted (instant). Arg is the peer world rank.
	PhaseNetReconnect
	// PhaseNetResend marks retained frames being replayed to a peer after
	// a reconnect handshake (instant). Arg is the peer world rank.
	PhaseNetResend
	// PhaseNetFault marks an injected frame-layer network fault — drop,
	// corruption, sever or black-hole trigger (instant). Arg is the peer
	// world rank.
	PhaseNetFault
	// PhaseNetAccuse marks the socket transport accusing a rank of failure
	// after a connection stalled past FailTimeout (instant). Arg is the
	// accused world rank.
	PhaseNetAccuse
	// PhaseAMRExchange is one level's ghost exchange in the AMR
	// sub-cycled step (pack, wire, interpolate/restrict, unpack). Arg is
	// the refinement level.
	PhaseAMRExchange
	// PhaseAMRSweep covers one level's boundary + collide-stream sweeps
	// in the AMR sub-cycled step. Arg is the refinement level.
	PhaseAMRSweep
	// PhaseRegrade spans one refine/coarsen controller pass: criterion
	// evaluation, mark gather and 2:1 re-grading. Arg is the number of
	// leaves after the pass.
	PhaseRegrade
	// PhaseMigrate spans the block migration of one re-grade: split,
	// ship, merge and plan rebuild. Arg is the number of leaves that
	// moved between ranks.
	PhaseMigrate
	// NumPhases bounds the phase space.
	NumPhases
)

// phaseInfo is the exporter-side description of one phase.
type phaseInfo struct {
	name    string
	argName string // meaning of Span.Arg, "" if unused
	instant bool   // rendered as an instant event, not a duration slice
}

var phaseTable = [NumPhases]phaseInfo{
	PhaseStep:          {name: "step"},
	PhaseExchangePost:  {name: "exchange-post"},
	PhaseInteriorSweep: {name: "interior-sweep"},
	PhaseExchangeWait:  {name: "exchange-wait"},
	PhaseFrontierSweep: {name: "frontier-sweep"},
	PhaseBoundary:      {name: "boundary", argName: "block"},
	PhaseCollideStream: {name: "collide-stream", argName: "block"},
	PhasePack:          {name: "pack", argName: "task"},
	PhaseUnpack:        {name: "unpack", argName: "task"},
	PhaseLocalCopy:     {name: "local-copy", argName: "task"},
	PhaseSend:          {name: "send", argName: "peer"},
	PhaseRecv:          {name: "recv", argName: "peer"},
	PhaseBarrier:       {name: "barrier"},
	PhaseCheckpoint:    {name: "checkpoint"},
	PhaseReplicate:     {name: "buddy-replicate"},
	PhaseRecovery:      {name: "recovery"},
	PhaseRestore:       {name: "restore"},
	PhaseShrink:        {name: "shrink"},
	PhaseHeal:          {name: "heal"},
	PhaseFaultDrop:     {name: "fault-drop", argName: "peer", instant: true},
	PhaseFaultDelay:    {name: "fault-delay", argName: "peer", instant: true},
	PhaseRankFailed:    {name: "rank-failed", argName: "rank", instant: true},
	PhaseNetConnect:    {name: "net-connect", argName: "peer", instant: true},
	PhaseNetReconnect:  {name: "net-reconnect", argName: "peer", instant: true},
	PhaseNetResend:     {name: "net-resend", argName: "peer", instant: true},
	PhaseNetFault:      {name: "net-fault", argName: "peer", instant: true},
	PhaseNetAccuse:     {name: "net-accuse", argName: "rank", instant: true},
	PhaseAMRExchange:   {name: "amr-exchange", argName: "level"},
	PhaseAMRSweep:      {name: "amr-sweep", argName: "level"},
	PhaseRegrade:       {name: "regrade", argName: "leaves"},
	PhaseMigrate:       {name: "migrate", argName: "moved"},
}

// String returns the phase's exporter name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseTable[p].name
	}
	return "?"
}

// Span is one recorded interval (or instant event) on a lane. Times are
// nanoseconds since the trace epoch, so spans from different ranks of one
// Trace share a time axis.
type Span struct {
	Start, End int64
	Step       int32
	Arg        int32
	Phase      Phase
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Lane is one single-writer span ring. The ring is preallocated at
// construction and overwrites its oldest spans when full, so a lane's
// memory is bounded for arbitrarily long runs and recording never
// allocates. All methods are nil-safe: recording on a nil lane is a
// single-branch no-op.
type Lane struct {
	epoch   time.Time
	spans   []Span
	head    int   // next write position
	wrapped bool  // ring has overwritten at least one span
	dropped int64 // spans overwritten
	busy    int64 // accumulated span durations, ns (instants excluded)
	id      int
	name    string
}

// Name returns the lane's display name ("driver", "worker 3").
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Start stamps the beginning of a span: nanoseconds since the trace
// epoch. On a nil lane it returns 0 without reading the clock.
func (l *Lane) Start() int64 {
	if l == nil {
		return 0
	}
	return int64(time.Since(l.epoch))
}

// Span records an interval from start (a Start stamp) to now.
func (l *Lane) Span(p Phase, step int, arg int32, start int64) {
	if l == nil {
		return
	}
	end := int64(time.Since(l.epoch))
	l.busy += end - start
	l.put(Span{Phase: p, Step: int32(step), Arg: arg, Start: start, End: end})
}

// SpanAt records an interval with explicit epoch-relative start and end
// stamps — for recorders that already measured the phase with their own
// clocks and reconstruct the boundaries without extra clock reads.
func (l *Lane) SpanAt(p Phase, step int, arg int32, start, end int64) {
	if l == nil {
		return
	}
	l.busy += end - start
	l.put(Span{Phase: p, Step: int32(step), Arg: arg, Start: start, End: end})
}

// Instant records a zero-duration event at the current time.
func (l *Lane) Instant(p Phase, step int, arg int32) {
	if l == nil {
		return
	}
	now := int64(time.Since(l.epoch))
	l.put(Span{Phase: p, Step: int32(step), Arg: arg, Start: now, End: now})
}

func (l *Lane) put(s Span) {
	if l.wrapped {
		l.dropped++ // this write overwrites the ring's oldest span
	}
	l.spans[l.head] = s
	l.head++
	if l.head == len(l.spans) {
		l.head = 0
		l.wrapped = true
	}
}

// Len returns the number of retained spans.
func (l *Lane) Len() int {
	if l == nil {
		return 0
	}
	if l.wrapped {
		return len(l.spans)
	}
	return l.head
}

// Dropped returns the number of spans the ring has overwritten.
func (l *Lane) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// BusyNs returns the accumulated duration of all recorded spans in
// nanoseconds. On worker lanes, whose spans never nest, this is the
// lane's busy time — the numerator of the load-imbalance factor. (Driver
// lanes record nested spans, so their busy time double-counts.)
func (l *Lane) BusyNs() int64 {
	if l == nil {
		return 0
	}
	return l.busy
}

// Each calls fn for every retained span in recording order (oldest
// first). Only safe once the lane's writer has finished (or between
// parallel regions).
func (l *Lane) Each(fn func(Span)) {
	if l == nil {
		return
	}
	if l.wrapped {
		for _, s := range l.spans[l.head:] {
			fn(s)
		}
	}
	for _, s := range l.spans[:l.head] {
		fn(s)
	}
}

// DefaultSpansPerLane is the per-lane ring capacity when the caller
// passes 0: 1<<14 spans ≈ 512 KiB per lane, minutes of steady-state
// stepping before the ring wraps.
const DefaultSpansPerLane = 1 << 14

// Tracer is one rank's span sink: lane 0 is the rank's driver goroutine,
// lanes 1..workers are the worker-pool lanes. All methods are nil-safe.
type Tracer struct {
	rank  int
	epoch time.Time
	lanes []*Lane
}

// NewTracer builds a standalone tracer with its own epoch (use a Trace to
// share one epoch across ranks). workers is the number of worker lanes in
// addition to the driver lane; spansPerLane 0 selects
// DefaultSpansPerLane.
func NewTracer(rank, workers, spansPerLane int) *Tracer {
	return newTracerAt(time.Now(), rank, workers, spansPerLane)
}

func newTracerAt(epoch time.Time, rank, workers, spansPerLane int) *Tracer {
	if spansPerLane <= 0 {
		spansPerLane = DefaultSpansPerLane
	}
	if workers < 0 {
		workers = 0
	}
	t := &Tracer{rank: rank, epoch: epoch, lanes: make([]*Lane, 1+workers)}
	for i := range t.lanes {
		name := "driver"
		if i > 0 {
			name = "worker " + itoa(i-1)
		}
		t.lanes[i] = &Lane{epoch: epoch, spans: make([]Span, spansPerLane), id: i, name: name}
	}
	return t
}

// itoa is a tiny strconv.Itoa for lane names (avoids importing strconv
// into every build of the hot-path file; construction only).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Rank returns the tracer's rank id.
func (t *Tracer) Rank() int {
	if t == nil {
		return -1
	}
	return t.rank
}

// Driver returns the driver lane (lane 0).
func (t *Tracer) Driver() *Lane { return t.Lane(0) }

// Worker returns worker k's lane (lane k+1), nil when out of range.
func (t *Tracer) Worker(k int) *Lane { return t.Lane(k + 1) }

// Lane returns lane i, nil on a nil tracer or out-of-range index — so a
// partially-sized tracer degrades to not recording, never to a panic.
func (t *Tracer) Lane(i int) *Lane {
	if t == nil || i < 0 || i >= len(t.lanes) {
		return nil
	}
	return t.lanes[i]
}

// Lanes returns all lanes of the tracer.
func (t *Tracer) Lanes() []*Lane {
	if t == nil {
		return nil
	}
	return t.lanes
}

// AddLane appends a named lane beyond the driver/worker set — e.g. the
// socket transport's event lane, whose writers are background goroutines
// rather than the worker pool. Must be called before the run records
// spans (construction time); nil-safe. spansPerLane 0 selects
// DefaultSpansPerLane.
func (t *Tracer) AddLane(name string, spansPerLane int) *Lane {
	if t == nil {
		return nil
	}
	if spansPerLane <= 0 {
		spansPerLane = DefaultSpansPerLane
	}
	l := &Lane{epoch: t.epoch, spans: make([]Span, spansPerLane), id: len(t.lanes), name: name}
	t.lanes = append(t.lanes, l)
	return l
}

// WorkerBusyNs returns the busy time of each worker lane in nanoseconds —
// the input of the load-imbalance factor.
func (t *Tracer) WorkerBusyNs() []int64 {
	if t == nil || len(t.lanes) <= 1 {
		return nil
	}
	busy := make([]int64, len(t.lanes)-1)
	for i, l := range t.lanes[1:] {
		busy[i] = l.BusyNs()
	}
	return busy
}

// LoadImbalance returns max/mean of the worker lanes' busy times — 1.0 is
// perfect balance; 0 when fewer than one worker lane has recorded work.
func (t *Tracer) LoadImbalance() float64 {
	busy := t.WorkerBusyNs()
	var sum, max int64
	n := 0
	for _, b := range busy {
		if b == 0 {
			continue
		}
		sum += b
		if b > max {
			max = b
		}
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(sum)
}

// Trace is a collection of per-rank tracers sharing one epoch, so their
// spans line up on a single time axis in the Chrome-trace export.
type Trace struct {
	mu      sync.Mutex
	epoch   time.Time
	tracers []*Tracer
}

// NewTrace starts a trace; its epoch is the zero point of every span
// recorded through tracers created from it.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// NewTracer creates and registers a tracer for one rank. Safe to call
// concurrently from SPMD rank goroutines; nil-safe (a nil Trace returns a
// nil Tracer, which disables recording end to end).
func (tr *Trace) NewTracer(rank, workers, spansPerLane int) *Tracer {
	if tr == nil {
		return nil
	}
	t := newTracerAt(tr.epoch, rank, workers, spansPerLane)
	tr.mu.Lock()
	tr.tracers = append(tr.tracers, t)
	tr.mu.Unlock()
	return t
}

// Tracers returns the registered tracers, sorted by registration order.
func (tr *Trace) Tracers() []*Tracer {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Tracer(nil), tr.tracers...)
}
