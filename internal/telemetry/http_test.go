package telemetry

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsServerServesSnapshots(t *testing.T) {
	s := NewMetricsServer()
	r := NewRegistry()
	r.Counter("steps").Add(3)
	s.Register(0, r)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	body := fetch(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "steps") {
		t.Errorf("merged snapshot lacks the registered counter: %s", body)
	}
	ranks := fetch(t, "http://"+addr+"/metrics/ranks")
	if !strings.HasPrefix(ranks, "[") {
		t.Errorf("per-rank endpoint is not an array: %s", ranks)
	}
}

// TestMetricsServerCloseStopsServing is the shutdown-regression test: a
// Close must refuse further connections and reap the serve goroutine —
// the old implementation only closed the listener and leaked the
// http.Serve goroutine with any open connections.
func TestMetricsServerCloseStopsServing(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewMetricsServer()
		s.Register(0, NewRegistry())
		addr, err := s.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fetch(t, "http://"+addr+"/metrics")
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
			t.Fatal("server still serving after Close")
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
	// The serve goroutines must be gone. Allow scheduler slack: spin
	// briefly instead of asserting an instant count.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 5 serve/close cycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsServerContextCancelDrains: cancelling the serve context must
// drain the server exactly like Close.
func TestMetricsServerContextCancelDrains(t *testing.T) {
	s := NewMetricsServer()
	s.Register(0, NewRegistry())
	ctx, cancel := context.WithCancel(context.Background())
	addr, err := s.ServeContext(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fetch(t, "http://"+addr+"/metrics")
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
			break // refused: the server is down
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving 2s after context cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after cancellation: %v", err)
	}
}

// TestMetricsServerSessionLabels: registries registered under a session
// label aggregate per label on /metrics/sessions, still contribute to the
// fleet-wide /metrics view, and disappear when the label is unregistered.
func TestMetricsServerSessionLabels(t *testing.T) {
	s := NewMetricsServer()
	fleet := NewRegistry()
	fleet.Counter("fleet_steps").Add(1)
	s.Register(0, fleet)
	for rank := 0; rank < 2; rank++ {
		r := NewRegistry()
		r.Counter("session_steps").Add(int64(rank + 1))
		s.RegisterLabeled("sess-a", rank, r)
	}
	rb := NewRegistry()
	rb.Counter("session_steps").Add(7)
	s.RegisterLabeled("sess-b", 0, rb)

	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sessions := fetch(t, "http://"+addr+"/metrics/sessions")
	for _, want := range []string{`"sess-a"`, `"sess-b"`, "session_steps"} {
		if !strings.Contains(sessions, want) {
			t.Errorf("/metrics/sessions lacks %s: %s", want, sessions)
		}
	}
	if strings.Contains(sessions, "fleet_steps") {
		t.Errorf("/metrics/sessions leaked the unlabeled registry: %s", sessions)
	}
	merged := fetch(t, "http://"+addr+"/metrics")
	for _, want := range []string{"fleet_steps", "session_steps"} {
		if !strings.Contains(merged, want) {
			t.Errorf("/metrics lacks %s: %s", want, merged)
		}
	}

	s.UnregisterLabeled("sess-a")
	sessions = fetch(t, "http://"+addr+"/metrics/sessions")
	if strings.Contains(sessions, "sess-a") {
		t.Errorf("sess-a survived UnregisterLabeled: %s", sessions)
	}
	if !strings.Contains(sessions, "sess-b") {
		t.Errorf("UnregisterLabeled removed the wrong label: %s", sessions)
	}
}
