package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics registry: counters, gauges and duration histograms registered
// once (allocating) and updated from hot paths with single atomic
// operations (never allocating). All update methods are nil-safe, so a
// disabled registry is a nil pointer and instrumentation costs one
// branch.

// Counter is a monotonically increasing int64.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (queue depths, factors).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores the gauge value; nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value; nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histogramBuckets is the fixed bucket count of every histogram: bucket i
// holds observations with floor(log2(ns)) == i-1 (bucket 0 holds < 1 ns),
// spanning 1 ns to ~9.2 s in the last regular bucket and everything above
// in the overflow bucket. Power-of-two buckets make Observe a bits.Len64
// plus one atomic add.
const histogramBuckets = 34

// Histogram accumulates a duration distribution into power-of-two
// buckets. Fixed-size state, so registration allocates once and Observe
// never does.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one duration; nil-safe, allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) // 0 for 0ns, 1 for 1ns, ...
	if i >= histogramBuckets {
		i = histogramBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[i].Add(1)
}

// Count returns the number of observations; nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the total observed nanoseconds; nil-safe.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// MeanNs returns the mean observation in nanoseconds.
func (h *Histogram) MeanNs() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.SumNs()) / float64(n)
}

// quantileNs estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation inside the selected bucket.
func (h *Histogram) quantileNs(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histogramBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo := 0.0
			if i > 0 {
				lo = float64(int64(1) << (i - 1))
			}
			hi := float64(int64(1) << i)
			frac := (target - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(h.sumNs.Load())
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram) is
// idempotent per name and safe for concurrent use; updates on the
// returned handles are lock-free. A nil Registry hands out nil handles,
// which disable recording at every call site.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter; nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram; nil
// on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
