package telemetry

import (
	"fmt"
	"io"
	"sort"

	"walberla/internal/perfmodel"
)

// Live roofline comparison: the paper's node-level validation (measured
// MLUPS vs roofline/ECM prediction, section 4.1) produced by the running
// binary from the telemetry timers instead of offline analysis.

// PhaseSeconds is one phase's share of the run in a roofline report.
type PhaseSeconds struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"` // fraction of wall time
	// MLUPS is the update rate the whole run would achieve if every step
	// cost only this phase — fluid updates / phase time. Large numbers
	// mean the phase is cheap.
	MLUPS float64 `json:"mlups"`
}

// RooflineReport compares a run's measured per-phase performance against
// the perfmodel predictions for a machine.
type RooflineReport struct {
	Machine string         `json:"machine"`
	Phases  []PhaseSeconds `json:"phases"`
	// MeasuredMLUPS is fluid updates per wall-clock second (per rank,
	// multiply by ranks for the aggregate).
	MeasuredMLUPS float64 `json:"measured_mlups"`
	// KernelMLUPS is fluid updates per second of pure kernel time
	// (boundary + collide-stream) — the quantity the kernel models
	// predict.
	KernelMLUPS float64 `json:"kernel_mlups"`
	// PredictedMLUPS is the perfmodel ECM/SMT kernel prediction for the
	// machine, kernel class and core count.
	PredictedMLUPS float64 `json:"predicted_mlups"`
	// RooflineMLUPS is the bandwidth ceiling of the machine.
	RooflineMLUPS float64 `json:"roofline_mlups"`
	// ModelEfficiency is KernelMLUPS / PredictedMLUPS.
	ModelEfficiency float64 `json:"model_efficiency"`
	// LoadImbalance is max/mean worker busy time (1.0 = perfect).
	LoadImbalance float64 `json:"load_imbalance"`
}

// RooflineInput is what a run hands to BuildRooflineReport: measured
// times and sizes plus the model parameters describing the kernel.
type RooflineInput struct {
	// FluidUpdates is total fluid cell updates (fluid cells x steps) on
	// the scope being reported (one rank, or global).
	FluidUpdates float64
	// WallSeconds is the wall-clock time of the stepping loop.
	WallSeconds float64
	// KernelSeconds is the time spent in boundary handling plus
	// collide-stream sweeps, summed over workers and divided by the
	// worker count (i.e. wall-clock kernel time of one rank).
	KernelSeconds float64
	// PhaseSecondsByName are the wall-clock phase times to itemize
	// (exchange-post, interior-sweep, ...).
	PhaseSecondsByName map[string]float64
	// Machine is the perfmodel machine to compare against.
	Machine *perfmodel.Machine
	// Kernel and Collision classify the running kernel for the model.
	Kernel    perfmodel.KernelClass
	Collision perfmodel.CollisionClass
	// Cores is the core count the prediction should assume (the worker
	// count of the run, capped at the machine's cores).
	Cores int
	// SMTWays for the prediction (0 selects 1).
	SMTWays int
	// LoadImbalance as measured by the tracer (0 when untraced).
	LoadImbalance float64
}

// BuildRooflineReport assembles the comparison.
func BuildRooflineReport(in RooflineInput) RooflineReport {
	m := in.Machine
	if m == nil {
		m = perfmodel.SuperMUCSocket()
	}
	cores := in.Cores
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	smt := in.SMTWays
	if smt < 1 {
		smt = 1
	}
	r := RooflineReport{
		Machine:        m.Name,
		PredictedMLUPS: perfmodel.KernelMLUPS(m, in.Kernel, in.Collision, cores, smt),
		RooflineMLUPS:  m.Roofline(),
		LoadImbalance:  in.LoadImbalance,
	}
	if in.WallSeconds > 0 {
		r.MeasuredMLUPS = in.FluidUpdates / in.WallSeconds / 1e6
	}
	if in.KernelSeconds > 0 {
		r.KernelMLUPS = in.FluidUpdates / in.KernelSeconds / 1e6
	}
	if r.PredictedMLUPS > 0 {
		r.ModelEfficiency = r.KernelMLUPS / r.PredictedMLUPS
	}
	names := make([]string, 0, len(in.PhaseSecondsByName))
	for name := range in.PhaseSecondsByName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return in.PhaseSecondsByName[names[i]] > in.PhaseSecondsByName[names[j]]
	})
	for _, name := range names {
		sec := in.PhaseSecondsByName[name]
		p := PhaseSeconds{Name: name, Seconds: sec}
		if in.WallSeconds > 0 {
			p.Share = sec / in.WallSeconds
		}
		if sec > 0 {
			p.MLUPS = in.FluidUpdates / sec / 1e6
		}
		r.Phases = append(r.Phases, p)
	}
	return r
}

// Publish writes the report into the registry as roofline.* gauges, so
// metrics snapshots (and the HTTP endpoint) carry the per-phase MLUPS and
// the model comparison alongside the raw counters. Nil-safe.
func (r RooflineReport) Publish(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("roofline.measured_mlups").Set(r.MeasuredMLUPS)
	reg.Gauge("roofline.kernel_mlups").Set(r.KernelMLUPS)
	reg.Gauge("roofline.predicted_mlups").Set(r.PredictedMLUPS)
	reg.Gauge("roofline.ceiling_mlups").Set(r.RooflineMLUPS)
	reg.Gauge("roofline.model_efficiency").Set(r.ModelEfficiency)
	reg.Gauge("roofline.load_imbalance").Set(r.LoadImbalance)
	for _, p := range r.Phases {
		reg.Gauge("roofline.phase_mlups." + p.Name).Set(p.MLUPS)
		reg.Gauge("roofline.phase_share." + p.Name).Set(p.Share)
	}
}

// WriteText renders the report for terminals.
func (r RooflineReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "roofline comparison (%s)\n", r.Machine); err != nil {
		return err
	}
	for _, p := range r.Phases {
		if _, err := fmt.Fprintf(w, "  phase %-16s %10.4fs  %5.1f%%  %10.2f MLUPS\n",
			p.Name, p.Seconds, 100*p.Share, p.MLUPS); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"  measured %.2f MLUPS (kernel-only %.2f) vs model %.2f MLUPS, roofline %.2f MLUPS — model efficiency %.0f%%, load imbalance %.2f\n",
		r.MeasuredMLUPS, r.KernelMLUPS, r.PredictedMLUPS, r.RooflineMLUPS,
		100*r.ModelEfficiency, r.LoadImbalance)
	return err
}
