package lattice

// Equilibrium computes the discrete Maxwell-Boltzmann equilibrium
// distribution f_alpha^eq for density rho and velocity (ux, uy, uz) into
// feq, which must have length s.Q. It implements the standard second-order
// expansion
//
//	f_alpha^eq = w_alpha * rho * (1 + 3(e.u) + 9/2 (e.u)^2 - 3/2 u^2)
//
// in lattice units (c_s^2 = 1/3, dt = dx = 1).
func (s *Stencil) Equilibrium(feq []float64, rho, ux, uy, uz float64) {
	if len(feq) != s.Q {
		panic("lattice: Equilibrium output slice has wrong length")
	}
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)
	for a := 0; a < s.Q; a++ {
		cu := 3.0 * (float64(s.Cx[a])*ux + float64(s.Cy[a])*uy + float64(s.Cz[a])*uz)
		feq[a] = s.W[a] * rho * (1.0 + cu + 0.5*cu*cu - usq)
	}
}

// EquilibriumDir computes a single equilibrium component; it is used by
// boundary conditions that need f^eq for one direction only.
func (s *Stencil) EquilibriumDir(a Direction, rho, ux, uy, uz float64) float64 {
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)
	cu := 3.0 * (float64(s.Cx[a])*ux + float64(s.Cy[a])*uy + float64(s.Cz[a])*uz)
	return s.W[a] * rho * (1.0 + cu + 0.5*cu*cu - usq)
}

// Moments computes the macroscopic density and momentum-density from a set
// of PDFs f (length s.Q): rho = sum f_a, rho*u = sum e_a f_a. The returned
// velocity is momentum divided by density.
func (s *Stencil) Moments(f []float64) (rho, ux, uy, uz float64) {
	if len(f) != s.Q {
		panic("lattice: Moments input slice has wrong length")
	}
	var mx, my, mz float64
	for a := 0; a < s.Q; a++ {
		fa := f[a]
		rho += fa
		mx += float64(s.Cx[a]) * fa
		my += float64(s.Cy[a]) * fa
		mz += float64(s.Cz[a]) * fa
	}
	inv := 1.0 / rho
	return rho, mx * inv, my * inv, mz * inv
}

// Density returns the zeroth moment of f.
func (s *Stencil) Density(f []float64) float64 {
	var rho float64
	for a := 0; a < s.Q; a++ {
		rho += f[a]
	}
	return rho
}

// BytesPerCellUpdate returns the number of bytes streamed over the memory
// interface per lattice cell update for this stencil, assuming IEEE-754
// double precision PDFs, a stream-pull update reading and writing every
// PDF, and a write-allocate cache strategy (each store first loads the
// target line). For D3Q19 this is the paper's 19 * 3 * 8 = 456 B figure.
func (s *Stencil) BytesPerCellUpdate() int {
	// read + write + write-allocate read, 8 bytes each.
	return s.Q * 3 * 8
}
