package lattice

import (
	"testing"
	"testing/quick"
)

func TestFaceStrings(t *testing.T) {
	names := map[Face]string{
		FaceW: "W", FaceE: "E", FaceS: "S", FaceN: "N", FaceB: "B", FaceT: "T",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Face(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if Face(99).String() != "Face(99)" {
		t.Errorf("invalid face string = %q", Face(99).String())
	}
}

func TestFacePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("Normal", func() { Face(42).Normal() })
	mustPanic("Opposite", func() { Face(42).Opposite() })
}

func TestStencilString(t *testing.T) {
	if D3Q19().String() != "D3Q19" || D3Q27().String() != "D3Q27" || D2Q9().String() != "D2Q9" {
		t.Error("stencil names wrong")
	}
}

func TestAccessors(t *testing.T) {
	s := D3Q19()
	x, y, z := s.Velocity(NE)
	if x != 1 || y != 1 || z != 0 {
		t.Errorf("Velocity(NE) = (%d,%d,%d)", x, y, z)
	}
	if s.Weight(C) != 1.0/3.0 || s.Weight(E) != 1.0/18.0 || s.Weight(NE) != 1.0/36.0 {
		t.Error("weights wrong")
	}
	if s.Inverse(NE) != SW || s.Inverse(T) != B {
		t.Error("Inverse wrong")
	}
}

// Shared stencil instances: repeated constructor calls return the same
// tables (they are package singletons and must not be copied per call).
func TestStencilSingletons(t *testing.T) {
	if D3Q19() != D3Q19() || D3Q27() != D3Q27() || D2Q9() != D2Q9() {
		t.Error("stencil constructors do not return singletons")
	}
}

// Property: the equilibrium is Galilean-consistent to first order — the
// first moment shifts linearly with the velocity for fixed density.
func TestEquilibriumLinearity(t *testing.T) {
	s := D3Q19()
	f := func(a uint8) bool {
		u := (float64(a)/255.0 - 0.5) * 0.1
		feq1 := make([]float64, s.Q)
		feq2 := make([]float64, s.Q)
		s.Equilibrium(feq1, 1, u, 0, 0)
		s.Equilibrium(feq2, 1, 2*u, 0, 0)
		_, ux1, _, _ := s.Moments(feq1)
		_, ux2, _, _ := s.Moments(feq2)
		return abs(ux2-2*ux1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// D2Q9 face directions: the z faces carry no PDFs, the x/y faces three
// each.
func TestD2Q9FaceDirections(t *testing.T) {
	s := D2Q9()
	if len(s.FaceDirections(FaceT)) != 0 || len(s.FaceDirections(FaceB)) != 0 {
		t.Error("2-D stencil has z-face directions")
	}
	for _, f := range []Face{FaceW, FaceE, FaceS, FaceN} {
		if got := len(s.FaceDirections(f)); got != 3 {
			t.Errorf("face %s: %d directions, want 3", f, got)
		}
	}
}

// D3Q27 face directions: nine per face (full 3x3 slab).
func TestD3Q27FaceDirections(t *testing.T) {
	s := D3Q27()
	for f := FaceW; f < NumFaces; f++ {
		if got := len(s.FaceDirections(f)); got != 9 {
			t.Errorf("face %s: %d directions, want 9", f, got)
		}
	}
}
