// Package lattice defines the discrete velocity sets (stencils) used by
// the lattice Boltzmann method together with the equilibrium distribution
// and macroscopic moment computations.
//
// The package follows the paper's D3Q19 model (Qian, d'Humières, Lallemand)
// as the primary stencil and additionally ships D3Q27 and D2Q9, mirroring
// waLBerla's auto-generated stencil headers. A Stencil is pure data:
// velocity vectors, lattice weights, inverse-direction table, and derived
// index sets (per-face communication directions), so that compute kernels
// can either iterate generically over any stencil or be specialized against
// the fixed D3Q19 ordering at compile time.
package lattice
