package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

func allStencils() []*Stencil {
	return []*Stencil{D3Q19(), D3Q27(), D2Q9()}
}

func TestStencilSizes(t *testing.T) {
	tests := []struct {
		s    *Stencil
		d, q int
	}{
		{D3Q19(), 3, 19},
		{D3Q27(), 3, 27},
		{D2Q9(), 2, 9},
	}
	for _, tc := range tests {
		if tc.s.D != tc.d || tc.s.Q != tc.q {
			t.Errorf("%s: got D=%d Q=%d, want D=%d Q=%d", tc.s, tc.s.D, tc.s.Q, tc.d, tc.q)
		}
		if len(tc.s.Cx) != tc.q || len(tc.s.Cy) != tc.q || len(tc.s.Cz) != tc.q ||
			len(tc.s.W) != tc.q || len(tc.s.Inv) != tc.q {
			t.Errorf("%s: table lengths inconsistent with Q=%d", tc.s, tc.q)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	for _, s := range allStencils() {
		var sum float64
		for _, w := range s.W {
			sum += w
		}
		if math.Abs(sum-1.0) > 1e-15 {
			t.Errorf("%s: weights sum to %v, want 1", s, sum)
		}
	}
}

func TestWeightsPositive(t *testing.T) {
	for _, s := range allStencils() {
		for a, w := range s.W {
			if w <= 0 {
				t.Errorf("%s: weight[%d] = %v, want > 0", s, a, w)
			}
		}
	}
}

func TestVelocitiesSumToZero(t *testing.T) {
	for _, s := range allStencils() {
		var sx, sy, sz int
		for a := 0; a < s.Q; a++ {
			sx += s.Cx[a]
			sy += s.Cy[a]
			sz += s.Cz[a]
		}
		if sx != 0 || sy != 0 || sz != 0 {
			t.Errorf("%s: velocity sum (%d,%d,%d), want zero", s, sx, sy, sz)
		}
	}
}

func TestVelocitiesDistinct(t *testing.T) {
	for _, s := range allStencils() {
		seen := map[[3]int]int{}
		for a := 0; a < s.Q; a++ {
			v := [3]int{s.Cx[a], s.Cy[a], s.Cz[a]}
			if prev, dup := seen[v]; dup {
				t.Errorf("%s: directions %d and %d share velocity %v", s, prev, a, v)
			}
			seen[v] = a
		}
	}
}

func TestInverseDirections(t *testing.T) {
	for _, s := range allStencils() {
		for a := 0; a < s.Q; a++ {
			inv := s.Inv[a]
			if s.Cx[inv] != -s.Cx[a] || s.Cy[inv] != -s.Cy[a] || s.Cz[inv] != -s.Cz[a] {
				t.Errorf("%s: Inv[%d]=%d is not the opposite velocity", s, a, inv)
			}
			if s.Inv[inv] != Direction(a) {
				t.Errorf("%s: Inv is not an involution at %d", s, a)
			}
			if s.W[inv] != s.W[a] {
				t.Errorf("%s: inverse directions have different weights at %d", s, a)
			}
		}
	}
}

// Lattice isotropy conditions required for recovering Navier-Stokes:
// sum w_a e_ai e_aj = c_s^2 delta_ij with c_s^2 = 1/3.
func TestSecondMomentIsotropy(t *testing.T) {
	for _, s := range allStencils() {
		var m [3][3]float64
		for a := 0; a < s.Q; a++ {
			e := [3]float64{float64(s.Cx[a]), float64(s.Cy[a]), float64(s.Cz[a])}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					m[i][j] += s.W[a] * e[i] * e[j]
				}
			}
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				want := 0.0
				if i == j && i < s.D {
					want = 1.0 / 3.0
				}
				if s.D == 2 && i == 2 && j == 2 {
					want = 0.0
				}
				if math.Abs(m[i][j]-want) > 1e-15 {
					t.Errorf("%s: second moment [%d][%d] = %v, want %v", s, i, j, m[i][j], want)
				}
			}
		}
	}
}

// Fourth-order isotropy: sum w_a e_ai e_aj e_ak e_al must equal
// c_s^4 (d_ij d_kl + d_ik d_jl + d_il d_jk) for the stress tensor to be
// isotropic. This distinguishes a valid LBM stencil from an arbitrary one.
func TestFourthMomentIsotropy(t *testing.T) {
	for _, s := range allStencils() {
		cs4 := 1.0 / 9.0
		delta := func(i, j int) float64 {
			if i == j {
				return 1
			}
			return 0
		}
		for i := 0; i < s.D; i++ {
			for j := 0; j < s.D; j++ {
				for k := 0; k < s.D; k++ {
					for l := 0; l < s.D; l++ {
						var m float64
						for a := 0; a < s.Q; a++ {
							e := [3]float64{float64(s.Cx[a]), float64(s.Cy[a]), float64(s.Cz[a])}
							m += s.W[a] * e[i] * e[j] * e[k] * e[l]
						}
						want := cs4 * (delta(i, j)*delta(k, l) + delta(i, k)*delta(j, l) + delta(i, l)*delta(j, k))
						if math.Abs(m-want) > 1e-14 {
							t.Errorf("%s: 4th moment [%d%d%d%d] = %v, want %v", s, i, j, k, l, m, want)
						}
					}
				}
			}
		}
	}
}

func TestFaceDirectionsD3Q19(t *testing.T) {
	s := D3Q19()
	for f := FaceW; f < NumFaces; f++ {
		dirs := s.FaceDirections(f)
		if len(dirs) != 5 {
			t.Errorf("face %s: got %d directions, want 5", f, len(dirs))
		}
		nx, ny, nz := f.Normal()
		for _, a := range dirs {
			if s.Cx[a]*nx+s.Cy[a]*ny+s.Cz[a]*nz <= 0 {
				t.Errorf("face %s: direction %d does not point out of the face", f, a)
			}
		}
	}
}

func TestFaceOppositeAndNormal(t *testing.T) {
	for f := FaceW; f < NumFaces; f++ {
		if f.Opposite().Opposite() != f {
			t.Errorf("face %s: Opposite not an involution", f)
		}
		nx, ny, nz := f.Normal()
		ox, oy, oz := f.Opposite().Normal()
		if nx != -ox || ny != -oy || nz != -oz {
			t.Errorf("face %s: opposite normal mismatch", f)
		}
		if nx*nx+ny*ny+nz*nz != 1 {
			t.Errorf("face %s: normal %v not unit axis vector", f, [3]int{nx, ny, nz})
		}
	}
}

func TestD3Q19NamedDirections(t *testing.T) {
	s := D3Q19()
	checks := []struct {
		d       Direction
		x, y, z int
	}{
		{C, 0, 0, 0}, {N, 0, 1, 0}, {S, 0, -1, 0}, {W, -1, 0, 0}, {E, 1, 0, 0},
		{T, 0, 0, 1}, {B, 0, 0, -1}, {NE, 1, 1, 0}, {NW, -1, 1, 0},
		{SE, 1, -1, 0}, {SW, -1, -1, 0}, {TN, 0, 1, 1}, {TS, 0, -1, 1},
		{TE, 1, 0, 1}, {TW, -1, 0, 1}, {BN, 0, 1, -1}, {BS, 0, -1, -1},
		{BE, 1, 0, -1}, {BW, -1, 0, -1},
	}
	if len(checks) != Q19 {
		t.Fatalf("test table has %d entries, want %d", len(checks), Q19)
	}
	for _, c := range checks {
		x, y, z := s.Velocity(c.d)
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("direction %d: velocity (%d,%d,%d), want (%d,%d,%d)", c.d, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestEquilibriumZeroVelocity(t *testing.T) {
	for _, s := range allStencils() {
		feq := make([]float64, s.Q)
		s.Equilibrium(feq, 1.0, 0, 0, 0)
		for a := 0; a < s.Q; a++ {
			if math.Abs(feq[a]-s.W[a]) > 1e-15 {
				t.Errorf("%s: feq[%d] = %v at rest, want weight %v", s, a, feq[a], s.W[a])
			}
		}
	}
}

func TestEquilibriumConservesMoments(t *testing.T) {
	s := D3Q19()
	feq := make([]float64, s.Q)
	cases := []struct{ rho, ux, uy, uz float64 }{
		{1.0, 0, 0, 0},
		{1.0, 0.05, 0, 0},
		{0.9, -0.02, 0.03, 0.01},
		{1.1, 0.08, -0.08, 0.05},
	}
	for _, c := range cases {
		s.Equilibrium(feq, c.rho, c.ux, c.uy, c.uz)
		rho, ux, uy, uz := s.Moments(feq)
		if math.Abs(rho-c.rho) > 1e-13 {
			t.Errorf("rho = %v, want %v", rho, c.rho)
		}
		if math.Abs(ux-c.ux) > 1e-13 || math.Abs(uy-c.uy) > 1e-13 || math.Abs(uz-c.uz) > 1e-13 {
			t.Errorf("u = (%v,%v,%v), want (%v,%v,%v)", ux, uy, uz, c.ux, c.uy, c.uz)
		}
	}
}

// Property: for any small velocity and positive density, the equilibrium
// reproduces its defining moments. Exercised via testing/quick.
func TestEquilibriumMomentsProperty(t *testing.T) {
	s := D3Q19()
	f := func(r, a, b, c uint8) bool {
		rho := 0.5 + float64(r)/255.0 // in [0.5, 1.5]
		ux := (float64(a)/255.0 - 0.5) * 0.2
		uy := (float64(b)/255.0 - 0.5) * 0.2
		uz := (float64(c)/255.0 - 0.5) * 0.2
		feq := make([]float64, s.Q)
		s.Equilibrium(feq, rho, ux, uy, uz)
		gr, gx, gy, gz := s.Moments(feq)
		return math.Abs(gr-rho) < 1e-12 &&
			math.Abs(gx-ux) < 1e-12 && math.Abs(gy-uy) < 1e-12 && math.Abs(gz-uz) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumDirMatchesBulk(t *testing.T) {
	s := D3Q19()
	feq := make([]float64, s.Q)
	s.Equilibrium(feq, 1.05, 0.03, -0.04, 0.02)
	for a := 0; a < s.Q; a++ {
		got := s.EquilibriumDir(Direction(a), 1.05, 0.03, -0.04, 0.02)
		if math.Abs(got-feq[a]) > 1e-15 {
			t.Errorf("EquilibriumDir(%d) = %v, bulk %v", a, got, feq[a])
		}
	}
}

func TestBytesPerCellUpdate(t *testing.T) {
	// The paper's roofline arithmetic: 19 doubles streamed in and out plus
	// write-allocate -> 456 bytes per lattice cell update.
	if got := D3Q19().BytesPerCellUpdate(); got != 456 {
		t.Errorf("D3Q19 bytes per update = %d, want 456", got)
	}
	if got := D2Q9().BytesPerCellUpdate(); got != 9*3*8 {
		t.Errorf("D2Q9 bytes per update = %d, want %d", got, 9*3*8)
	}
}

func TestMomentsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Moments did not panic on short slice")
		}
	}()
	D3Q19().Moments(make([]float64, 5))
}

func TestEquilibriumPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Equilibrium did not panic on short slice")
		}
	}()
	D3Q19().Equilibrium(make([]float64, 5), 1, 0, 0, 0)
}
