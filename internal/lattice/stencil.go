package lattice

import "fmt"

// Direction indexes a discrete velocity within a Stencil.
type Direction int

// Canonical D3Q19 direction indices. The ordering matches the generated
// stencil tables used throughout the kernels package: center first, then
// the six axis-aligned directions, then the twelve edge diagonals.
const (
	C  Direction = 0  // ( 0, 0, 0)
	N  Direction = 1  // ( 0,+1, 0)
	S  Direction = 2  // ( 0,-1, 0)
	W  Direction = 3  // (-1, 0, 0)
	E  Direction = 4  // (+1, 0, 0)
	T  Direction = 5  // ( 0, 0,+1)
	B  Direction = 6  // ( 0, 0,-1)
	NE Direction = 7  // (+1,+1, 0)
	NW Direction = 8  // (-1,+1, 0)
	SE Direction = 9  // (+1,-1, 0)
	SW Direction = 10 // (-1,-1, 0)
	TN Direction = 11 // ( 0,+1,+1)
	TS Direction = 12 // ( 0,-1,+1)
	TE Direction = 13 // (+1, 0,+1)
	TW Direction = 14 // (-1, 0,+1)
	BN Direction = 15 // ( 0,+1,-1)
	BS Direction = 16 // ( 0,-1,-1)
	BE Direction = 17 // (+1, 0,-1)
	BW Direction = 18 // (-1, 0,-1)
)

// Q19 is the number of discrete velocities in the D3Q19 model.
const Q19 = 19

// Stencil is a discrete velocity set: the "DdQq" lattice model of the LBM.
// All slices have length Q. A Stencil is immutable after construction; the
// package-level constructors return shared instances that must not be
// modified.
type Stencil struct {
	Name string // e.g. "D3Q19"
	D    int    // spatial dimension
	Q    int    // number of discrete velocities

	// Cx, Cy, Cz are the integer components of the discrete velocity set
	// e_alpha. For 2-D stencils Cz is all zero.
	Cx, Cy, Cz []int

	// W holds the lattice weights w_alpha; they sum to one.
	W []float64

	// Inv maps a direction to its inverse: C[Inv[a]] == -C[a].
	Inv []Direction

	// faceDirs[f] lists the directions whose velocity has a positive
	// component along face f (see Face); these are exactly the PDFs that
	// must be communicated across that face of a block.
	faceDirs [6][]Direction
}

// Face identifies one of the six axis-aligned faces of a block.
type Face int

// Axis-aligned faces in the order used by faceDirs and the communication
// layer.
const (
	FaceW Face = iota // -x
	FaceE             // +x
	FaceS             // -y
	FaceN             // +y
	FaceB             // -z
	FaceT             // +z
	NumFaces
)

// Normal returns the outward unit normal of the face as integer components.
func (f Face) Normal() (int, int, int) {
	switch f {
	case FaceW:
		return -1, 0, 0
	case FaceE:
		return 1, 0, 0
	case FaceS:
		return 0, -1, 0
	case FaceN:
		return 0, 1, 0
	case FaceB:
		return 0, 0, -1
	case FaceT:
		return 0, 0, 1
	}
	panic(fmt.Sprintf("lattice: invalid face %d", int(f)))
}

// Opposite returns the face on the other side of the block.
func (f Face) Opposite() Face {
	switch f {
	case FaceW:
		return FaceE
	case FaceE:
		return FaceW
	case FaceS:
		return FaceN
	case FaceN:
		return FaceS
	case FaceB:
		return FaceT
	case FaceT:
		return FaceB
	}
	panic(fmt.Sprintf("lattice: invalid face %d", int(f)))
}

func (f Face) String() string {
	switch f {
	case FaceW:
		return "W"
	case FaceE:
		return "E"
	case FaceS:
		return "S"
	case FaceN:
		return "N"
	case FaceB:
		return "B"
	case FaceT:
		return "T"
	}
	return fmt.Sprintf("Face(%d)", int(f))
}

var d3q19 = newStencil("D3Q19", 3,
	[]int{0, 0, 0, -1, 1, 0, 0, 1, -1, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1},
	[]int{0, 1, -1, 0, 0, 0, 0, 1, 1, -1, -1, 1, -1, 0, 0, 1, -1, 0, 0},
	[]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, 1, 1, 1, -1, -1, -1, -1},
	[]float64{
		1.0 / 3.0,
		1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
	})

var d3q27 = buildD3Q27()

var d2q9 = buildD2Q9()

// D3Q19 returns the shared three-dimensional 19-velocity stencil used by
// all simulations in the paper.
func D3Q19() *Stencil { return d3q19 }

// D3Q27 returns the shared three-dimensional 27-velocity stencil.
func D3Q27() *Stencil { return d3q27 }

// D2Q9 returns the shared two-dimensional 9-velocity stencil.
func D2Q9() *Stencil { return d2q9 }

func buildD3Q27() *Stencil {
	cx := make([]int, 0, 27)
	cy := make([]int, 0, 27)
	cz := make([]int, 0, 27)
	w := make([]float64, 0, 27)
	// Center first, then axis, then face diagonals, then corners — grouped
	// by speed so the weights are easy to audit.
	type vel struct{ x, y, z int }
	var groups [4][]vel
	for z := -1; z <= 1; z++ {
		for y := -1; y <= 1; y++ {
			for x := -1; x <= 1; x++ {
				n := x*x + y*y + z*z
				groups[n] = append(groups[n], vel{x, y, z})
			}
		}
	}
	weights := []float64{8.0 / 27.0, 2.0 / 27.0, 1.0 / 54.0, 1.0 / 216.0}
	for g, vs := range groups {
		for _, v := range vs {
			cx = append(cx, v.x)
			cy = append(cy, v.y)
			cz = append(cz, v.z)
			w = append(w, weights[g])
		}
	}
	return newStencil("D3Q27", 3, cx, cy, cz, w)
}

func buildD2Q9() *Stencil {
	cx := []int{0, 1, 0, -1, 0, 1, -1, -1, 1}
	cy := []int{0, 0, 1, 0, -1, 1, 1, -1, -1}
	cz := make([]int, 9)
	w := []float64{
		4.0 / 9.0,
		1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0, 1.0 / 9.0,
		1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
	}
	return newStencil("D2Q9", 2, cx, cy, cz, w)
}

func newStencil(name string, d int, cx, cy, cz []int, w []float64) *Stencil {
	q := len(cx)
	if len(cy) != q || len(cz) != q || len(w) != q {
		panic("lattice: inconsistent stencil table lengths")
	}
	s := &Stencil{Name: name, D: d, Q: q, Cx: cx, Cy: cy, Cz: cz, W: w}
	s.Inv = make([]Direction, q)
	for a := 0; a < q; a++ {
		inv := -1
		for b := 0; b < q; b++ {
			if cx[b] == -cx[a] && cy[b] == -cy[a] && cz[b] == -cz[a] {
				inv = b
				break
			}
		}
		if inv < 0 {
			panic(fmt.Sprintf("lattice: %s direction %d has no inverse", name, a))
		}
		s.Inv[a] = Direction(inv)
	}
	for f := FaceW; f < NumFaces; f++ {
		nx, ny, nz := f.Normal()
		for a := 0; a < q; a++ {
			if cx[a]*nx+cy[a]*ny+cz[a]*nz > 0 {
				s.faceDirs[f] = append(s.faceDirs[f], Direction(a))
			}
		}
	}
	return s
}

// FaceDirections returns the directions whose velocity points out of the
// given face. For D3Q19 each face has exactly five such directions; these
// are the PDFs exchanged with the neighbor across that face during ghost
// layer communication.
func (s *Stencil) FaceDirections(f Face) []Direction { return s.faceDirs[f] }

// Velocity returns the integer velocity components of direction a.
func (s *Stencil) Velocity(a Direction) (int, int, int) {
	return s.Cx[a], s.Cy[a], s.Cz[a]
}

// Weight returns the lattice weight of direction a.
func (s *Stencil) Weight(a Direction) float64 { return s.W[a] }

// Inverse returns the direction opposite to a.
func (s *Stencil) Inverse(a Direction) Direction { return s.Inv[a] }

func (s *Stencil) String() string { return s.Name }
