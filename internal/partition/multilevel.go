package partition

import (
	"math/rand"
	"sort"
)

// coarsen contracts a heavy-edge matching: each vertex is matched with its
// heaviest unmatched neighbor, matched pairs merge into one coarse vertex
// with summed weights and combined adjacency. Returns the coarse graph,
// the fine-to-coarse map, and whether the graph actually shrank.
func coarsen(g *Graph, rng *rand.Rand) (*Graph, []int, bool) {
	n := g.NumVertices()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best := -1
		bestW := 0.0
		for _, e := range g.adj[u] {
			if match[e.To] < 0 && e.To != u && e.Weight > bestW {
				best, bestW = e.To, e.Weight
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u // self-matched
		}
	}
	// Assign coarse indices.
	vmap := make([]int, n)
	for i := range vmap {
		vmap[i] = -1
	}
	nc := 0
	for u := 0; u < n; u++ {
		if vmap[u] >= 0 {
			continue
		}
		vmap[u] = nc
		if match[u] != u {
			vmap[match[u]] = nc
		}
		nc++
	}
	if nc >= n {
		return nil, nil, false
	}
	coarse := NewGraph(nc)
	for i := range coarse.VertexWeight {
		coarse.VertexWeight[i] = 0
		coarse.VertexMemory[i] = 0
	}
	for u := 0; u < n; u++ {
		cu := vmap[u]
		coarse.VertexWeight[cu] += g.VertexWeight[u]
		coarse.VertexMemory[cu] += g.VertexMemory[u]
		for _, e := range g.adj[u] {
			if cv := vmap[e.To]; cv != cu && u < e.To {
				coarse.AddEdge(cu, cv, e.Weight)
			}
		}
	}
	return coarse, vmap, true
}

// growInitial computes an initial k-way partition by greedy graph growing:
// each part is grown from a seed vertex, always absorbing the frontier
// vertex with the highest connectivity to the part, until the part reaches
// its weight target.
func growInitial(g *Graph, k int, rng *rand.Rand) []int {
	n := g.NumVertices()
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	remainingWeight := g.TotalVertexWeight()
	unassigned := n
	for p := 0; p < k && unassigned > 0; p++ {
		target := remainingWeight / float64(k-p)
		// Seed: unassigned vertex with maximum weight (deterministic given
		// the rng-free tie-break by index).
		seed := -1
		for v := 0; v < n; v++ {
			if parts[v] < 0 && (seed < 0 || g.VertexWeight[v] > g.VertexWeight[seed]) {
				seed = v
			}
		}
		if seed < 0 {
			break
		}
		var weight float64
		gain := make(map[int]float64)
		take := func(v int) {
			parts[v] = p
			weight += g.VertexWeight[v]
			remainingWeight -= g.VertexWeight[v]
			unassigned--
			delete(gain, v)
			for _, e := range g.adj[v] {
				if parts[e.To] < 0 {
					gain[e.To] += e.Weight
				}
			}
		}
		take(seed)
		for weight < target && unassigned > 0 && p < k-1 {
			// Highest-gain frontier vertex; fall back to any unassigned
			// vertex when the frontier is empty (disconnected graph).
			best := -1
			bestGain := -1.0
			for v, gn := range gain {
				if gn > bestGain || (gn == bestGain && v < best) {
					best, bestGain = v, gn
				}
			}
			if best < 0 {
				for v := 0; v < n; v++ {
					if parts[v] < 0 {
						best = v
						break
					}
				}
			}
			if best < 0 {
				break
			}
			if weight+g.VertexWeight[best] > target*1.3 && weight > 0 {
				break // overshooting badly; close this part
			}
			take(best)
		}
	}
	// Sweep up leftovers into the last part (or the lightest part).
	for v := 0; v < n; v++ {
		if parts[v] < 0 {
			w := PartWeights(g, fillNegative(parts, k-1), k)
			lightest := 0
			for p := 1; p < k; p++ {
				if w[p] < w[lightest] {
					lightest = p
				}
			}
			parts[v] = lightest
		}
	}
	_ = rng
	return parts
}

// fillNegative returns a copy of parts with negatives replaced, so helper
// metrics can run on partially assigned slices.
func fillNegative(parts []int, def int) []int {
	out := make([]int, len(parts))
	for i, p := range parts {
		if p < 0 {
			out[i] = def
		} else {
			out[i] = p
		}
	}
	return out
}

// refine runs Fiduccia-Mattheyses-style boundary refinement passes: each
// pass visits boundary vertices in order of decreasing move gain and
// relocates them to their best neighboring part when the balance (and
// memory) constraints allow. Passes repeat until no improving move is
// found (bounded by a fixed pass count).
func refine(g *Graph, parts []int, k int, opt Options, rng *rand.Rand) {
	n := g.NumVertices()
	weights := PartWeights(g, parts, k)
	memory := make([]float64, k)
	for v, p := range parts {
		memory[p] += g.VertexMemory[v]
	}
	avg := g.TotalVertexWeight() / float64(k)
	maxW := avg * opt.ImbalanceTolerance

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		type move struct {
			v    int
			to   int
			gain float64
		}
		var moves []move
		for v := 0; v < n; v++ {
			// Connectivity to each adjacent part.
			conn := map[int]float64{}
			for _, e := range g.adj[v] {
				conn[parts[e.To]] += e.Weight
			}
			internal := conn[parts[v]]
			for p, w := range conn {
				if p == parts[v] {
					continue
				}
				if gain := w - internal; gain > 0 {
					moves = append(moves, move{v, p, gain})
				}
			}
		}
		sort.Slice(moves, func(a, b int) bool {
			if moves[a].gain != moves[b].gain {
				return moves[a].gain > moves[b].gain
			}
			return moves[a].v < moves[b].v
		})
		improved := false
		for _, mv := range moves {
			from := parts[mv.v]
			if from == mv.to {
				continue
			}
			// Re-check the gain (earlier moves may have changed it).
			var toW, fromW float64
			for _, e := range g.adj[mv.v] {
				switch parts[e.To] {
				case mv.to:
					toW += e.Weight
				case from:
					fromW += e.Weight
				}
			}
			if toW-fromW <= 0 {
				continue
			}
			// Balance constraint: don't overload the target, don't empty a
			// part below half average unless it stays non-negative.
			if weights[mv.to]+g.VertexWeight[mv.v] > maxW {
				continue
			}
			if opt.MemoryCapacity > 0 && memory[mv.to]+g.VertexMemory[mv.v] > opt.MemoryCapacity {
				continue
			}
			parts[mv.v] = mv.to
			weights[from] -= g.VertexWeight[mv.v]
			weights[mv.to] += g.VertexWeight[mv.v]
			memory[from] -= g.VertexMemory[mv.v]
			memory[mv.to] += g.VertexMemory[mv.v]
			improved = true
		}
		if !improved {
			break
		}
	}
	// Balance-only pass: if some part exceeds the tolerance, shed its
	// lightest boundary vertices to the lightest neighboring part.
	for iter := 0; iter < 4*k; iter++ {
		heaviest := 0
		for p := 1; p < k; p++ {
			if weights[p] > weights[heaviest] {
				heaviest = p
			}
		}
		if weights[heaviest] <= maxW {
			break
		}
		moved := false
		for v := 0; v < n && !moved; v++ {
			if parts[v] != heaviest {
				continue
			}
			lightest := -1
			for _, e := range g.adj[v] {
				p := parts[e.To]
				if p != heaviest && (lightest < 0 || weights[p] < weights[lightest]) {
					lightest = p
				}
			}
			if lightest < 0 {
				continue
			}
			if weights[lightest]+g.VertexWeight[v] >= weights[heaviest] {
				continue
			}
			if opt.MemoryCapacity > 0 && memory[lightest]+g.VertexMemory[v] > opt.MemoryCapacity {
				continue
			}
			parts[v] = lightest
			weights[heaviest] -= g.VertexWeight[v]
			weights[lightest] += g.VertexWeight[v]
			memory[heaviest] -= g.VertexMemory[v]
			memory[lightest] += g.VertexMemory[v]
			moved = true
		}
		if !moved {
			break
		}
	}
	_ = rng
}
