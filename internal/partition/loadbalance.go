package partition

import (
	"fmt"

	"walberla/internal/blockforest"
)

// BuildBlockGraph translates a setup forest into the weighted graph of the
// paper's load balancing step: one vertex per block with the fluid cell
// count as workload and the allocated cell count as memory weight, and one
// edge per neighboring block pair weighted by the amount of ghost layer
// data exchanged across their shared boundary (face > edge > corner).
func BuildBlockGraph(f *blockforest.SetupForest) (*Graph, []*blockforest.SetupBlock) {
	blocks := f.Blocks()
	index := make(map[[3]int]int, len(blocks))
	for i, b := range blocks {
		index[b.Coord] = i
	}
	g := NewGraph(len(blocks))
	c := f.CellsPerBlock
	for i, b := range blocks {
		g.VertexWeight[i] = b.Workload
		g.VertexMemory[i] = b.Memory
		coords, offsets := f.Neighbors(b.Coord)
		for nIdx, nc := range coords {
			j, ok := index[nc]
			if !ok || j <= i {
				continue // each undirected edge once
			}
			off := offsets[nIdx]
			// Shared boundary size in cells: the product over axes of the
			// block extent where the offset is zero, 1 where it steps.
			volume := 1
			for d := 0; d < 3; d++ {
				if off[d] == 0 {
					volume *= c[d]
				}
			}
			g.AddEdge(i, j, float64(volume))
		}
	}
	return g, blocks
}

// BalanceGraph assigns ranks to the blocks of the forest by multilevel
// graph partitioning — the METIS-based static load balancing of the
// paper's initialization phase. MemoryCapacity (cells per process) of zero
// disables the memory constraint.
func BalanceGraph(f *blockforest.SetupForest, numRanks int, memoryCapacity float64, seed int64) error {
	g, blocks := BuildBlockGraph(f)
	parts, err := Partition(g, Options{
		Parts:          numRanks,
		MemoryCapacity: memoryCapacity,
		Seed:           seed,
	})
	if err != nil {
		return fmt.Errorf("partition: balancing forest: %w", err)
	}
	for i, b := range blocks {
		b.Rank = parts[i]
	}
	return nil
}
