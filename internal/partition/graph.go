// Package partition provides the static load balancer of the setup phase:
// a multilevel k-way graph partitioner in the spirit of METIS (the paper
// uses METIS for this step) — heavy-edge-matching coarsening, greedy graph
// growing for the initial partition, and Fiduccia-Mattheyses-style
// boundary refinement — plus the translation from a block forest with
// per-block workloads and communication volumes into the weighted graph
// the partitioner consumes.
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is one weighted adjacency entry.
type Edge struct {
	To     int
	Weight float64
}

// Graph is an undirected graph with weighted vertices (workload), an
// optional secondary vertex weight (memory), and weighted edges
// (communication volume).
type Graph struct {
	VertexWeight []float64
	VertexMemory []float64
	adj          [][]Edge
}

// NewGraph creates a graph with n vertices of unit weight and no edges.
func NewGraph(n int) *Graph {
	g := &Graph{
		VertexWeight: make([]float64, n),
		VertexMemory: make([]float64, n),
		adj:          make([][]Edge, n),
	}
	for i := range g.VertexWeight {
		g.VertexWeight[i] = 1
		g.VertexMemory[i] = 1
	}
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// AddEdge inserts the undirected edge (u, v) with the given weight,
// accumulating onto an existing edge.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	g.addHalf(u, v, w)
	g.addHalf(v, u, w)
}

func (g *Graph) addHalf(u, v int, w float64) {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].Weight += w
			return
		}
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
}

// Neighbors returns the adjacency list of u (not to be modified).
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// TotalVertexWeight sums the vertex workloads.
func (g *Graph) TotalVertexWeight() float64 {
	var t float64
	for _, w := range g.VertexWeight {
		t += w
	}
	return t
}

// EdgeCut returns the summed weight of edges crossing parts.
func EdgeCut(g *Graph, parts []int) float64 {
	var cut float64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.To && parts[u] != parts[e.To] {
				cut += e.Weight
			}
		}
	}
	return cut
}

// PartWeights sums vertex weights per part over k parts.
func PartWeights(g *Graph, parts []int, k int) []float64 {
	w := make([]float64, k)
	for v, p := range parts {
		w[p] += g.VertexWeight[v]
	}
	return w
}

// Imbalance returns max part weight over average part weight.
func Imbalance(g *Graph, parts []int, k int) float64 {
	w := PartWeights(g, parts, k)
	var total, maxW float64
	for _, v := range w {
		total += v
		if v > maxW {
			maxW = v
		}
	}
	if total == 0 {
		return 1
	}
	return maxW / (total / float64(k))
}

// Options configures Partition.
type Options struct {
	// Parts is the number of parts k (processes).
	Parts int
	// ImbalanceTolerance is the allowed max-part/average ratio during
	// refinement; 0 means the default 1.05.
	ImbalanceTolerance float64
	// MemoryCapacity, if positive, is the maximum summed VertexMemory per
	// part — the paper's per-process memory limit constraint.
	MemoryCapacity float64
	// Seed makes the randomized stages deterministic.
	Seed int64
	// coarsenThreshold stops coarsening below this many vertices
	// (default 8 * Parts).
	CoarsenThreshold int
}

// Partition computes a k-way partition of g minimizing the edge cut under
// the balance (and optional memory) constraints. It returns the part index
// per vertex.
func Partition(g *Graph, opt Options) ([]int, error) {
	k := opt.Parts
	if k <= 0 {
		return nil, fmt.Errorf("partition: invalid part count %d", k)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	if opt.ImbalanceTolerance <= 0 {
		opt.ImbalanceTolerance = 1.05
	}
	if opt.CoarsenThreshold <= 0 {
		opt.CoarsenThreshold = 8 * k
	}
	if k == 1 {
		return make([]int, n), nil
	}
	if k >= n {
		// One vertex per part (heaviest first so big blocks spread out).
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return g.VertexWeight[order[a]] > g.VertexWeight[order[b]]
		})
		parts := make([]int, n)
		for i, v := range order {
			parts[v] = i % k
		}
		return parts, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Multilevel V-cycle.
	levels := []*Graph{g}
	maps := [][]int{} // fine vertex -> coarse vertex
	for levels[len(levels)-1].NumVertices() > opt.CoarsenThreshold {
		coarse, vmap, shrunk := coarsen(levels[len(levels)-1], rng)
		if !shrunk {
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, vmap)
	}
	coarsest := levels[len(levels)-1]
	parts := growInitial(coarsest, k, rng)
	refine(coarsest, parts, k, opt, rng)
	// Project back through the levels, refining at each.
	for li := len(maps) - 1; li >= 0; li-- {
		fine := levels[li]
		vmap := maps[li]
		fineParts := make([]int, fine.NumVertices())
		for v := range fineParts {
			fineParts[v] = parts[vmap[v]]
		}
		parts = fineParts
		refine(fine, parts, k, opt, rng)
	}
	return parts, nil
}
