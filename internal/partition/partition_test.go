package partition

import (
	"math/rand"
	"testing"

	"walberla/internal/blockforest"
)

// grid2D builds the nxn 4-connected grid graph with unit weights.
func grid2D(n int) *Graph {
	g := NewGraph(n * n)
	id := func(x, y int) int { return y*n + x }
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if x+1 < n {
				g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < n {
				g.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // accumulates
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 2, 9) // self loop ignored
	if len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0].Weight != 5 {
		t.Errorf("edge accumulation failed: %+v", g.Neighbors(0))
	}
	if len(g.Neighbors(2)) != 1 {
		t.Errorf("self loop not ignored: %+v", g.Neighbors(2))
	}
	if g.TotalVertexWeight() != 3 {
		t.Errorf("TotalVertexWeight = %v", g.TotalVertexWeight())
	}
}

func TestEdgeCutAndImbalance(t *testing.T) {
	g := grid2D(2) // square: 4 vertices, 4 edges
	parts := []int{0, 0, 1, 1}
	if cut := EdgeCut(g, parts); cut != 2 {
		t.Errorf("EdgeCut = %v, want 2", cut)
	}
	if im := Imbalance(g, parts, 2); im != 1 {
		t.Errorf("Imbalance = %v, want 1", im)
	}
	parts = []int{0, 0, 0, 1}
	if im := Imbalance(g, parts, 2); im != 1.5 {
		t.Errorf("Imbalance = %v, want 1.5", im)
	}
}

func TestPartitionTrivialCases(t *testing.T) {
	g := grid2D(3)
	parts, err := Partition(g, Options{Parts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must place everything in part 0")
		}
	}
	if _, err := Partition(g, Options{Parts: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	// k >= n: one vertex per part.
	small := NewGraph(3)
	parts, err = Partition(small, Options{Parts: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, p := range parts {
		seen[p]++
		if p < 0 || p >= 5 {
			t.Fatalf("invalid part %d", p)
		}
	}
	for p, n := range seen {
		if n != 1 {
			t.Errorf("part %d holds %d vertices", p, n)
		}
	}
}

func TestPartitionGridQuality(t *testing.T) {
	const n = 16
	g := grid2D(n)
	const k = 4
	parts, err := Partition(g, Options{Parts: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if im := Imbalance(g, parts, k); im > 1.10 {
		t.Errorf("imbalance %v, want <= 1.10", im)
	}
	cut := EdgeCut(g, parts)
	// The optimal 4-way cut of a 16x16 grid is 32 (two straight cuts);
	// anything under ~2.5x optimal shows the refinement works. A random
	// partition cuts ~3/4 of the 480 edges (~360).
	if cut > 80 {
		t.Errorf("edge cut %v, want <= 80", cut)
	}
	// Sanity: hugely better than random.
	r := rand.New(rand.NewSource(2))
	randParts := make([]int, g.NumVertices())
	for i := range randParts {
		randParts[i] = r.Intn(k)
	}
	if rc := EdgeCut(g, randParts); cut >= rc/2 {
		t.Errorf("cut %v not clearly better than random %v", cut, rc)
	}
}

func TestPartitionWeighted(t *testing.T) {
	// A path of 4 vertices where vertex 0 carries almost all weight: the
	// partitioner must not pair it with others.
	g := NewGraph(4)
	g.VertexWeight[0] = 10
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	parts, err := Partition(g, Options{Parts: 2, Seed: 3, ImbalanceTolerance: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, parts, 2)
	if w[parts[0]] > 11 {
		t.Errorf("heavy vertex grouped too heavily: weights %v", w)
	}
}

func TestPartitionMemoryConstraint(t *testing.T) {
	// 8 vertices of memory 1, capacity 3 per part, 3 parts: feasible only
	// if no part exceeds 3 vertices.
	g := grid2D(3) // 9 vertices
	parts, err := Partition(g, Options{Parts: 3, Seed: 5, MemoryCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]float64, 3)
	for v, p := range parts {
		mem[p] += g.VertexMemory[v]
	}
	// The constraint binds only refinement moves; initial growth respects
	// balance which implies <= 4 here. Validate the invariant:
	for p, m := range mem {
		if m > 4+1e-9 {
			t.Errorf("part %d memory %v exceeds capacity 4", p, m)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := grid2D(8)
	a, err := Partition(g, Options{Parts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{Parts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestBuildBlockGraph(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 1}, [3]int{8, 4, 2}, [3]bool{})
	g, blocks := BuildBlockGraph(f)
	if g.NumVertices() != 4 || len(blocks) != 4 {
		t.Fatalf("graph has %d vertices, want 4", g.NumVertices())
	}
	// Find the two blocks adjacent along x (offset (1,0,0)): shared face
	// is cells[1]*cells[2] = 8.
	idx := map[[3]int]int{}
	for i, b := range blocks {
		idx[b.Coord] = i
	}
	u, v := idx[[3]int{0, 0, 0}], idx[[3]int{1, 0, 0}]
	var w float64
	for _, e := range g.Neighbors(u) {
		if e.To == v {
			w = e.Weight
		}
	}
	if w != 8 {
		t.Errorf("x-face edge weight %v, want 8", w)
	}
	// Diagonal-in-xy neighbors share an edge of cells[2] = 2 cells.
	dv := idx[[3]int{1, 1, 0}]
	w = 0
	for _, e := range g.Neighbors(u) {
		if e.To == dv {
			w = e.Weight
		}
	}
	if w != 2 {
		t.Errorf("xy-diagonal edge weight %v, want 2", w)
	}
}

func TestBalanceGraphOnForest(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 4, 4}, [3]int{8, 8, 8}, [3]bool{})
	// Sparse-like workloads: outer blocks lighter.
	for _, b := range f.Blocks() {
		if b.Coord[0] == 0 || b.Coord[0] == 3 {
			b.Workload = 64
		}
	}
	const ranks = 8
	if err := BalanceGraph(f, ranks, 0, 11); err != nil {
		t.Fatal(err)
	}
	if f.MaxRank() >= ranks {
		t.Fatalf("MaxRank = %d", f.MaxRank())
	}
	w := f.RankWorkloads(ranks)
	var total, maxW float64
	for _, v := range w {
		total += v
		if v > maxW {
			maxW = v
		}
	}
	if maxW > 1.25*total/ranks {
		t.Errorf("workload imbalance: max %v vs avg %v", maxW, total/ranks)
	}
}
