// Package field provides the cell data containers used by the LBM kernels:
// particle distribution function (PDF) fields with ghost layers in either
// array-of-structures or structure-of-arrays memory layout, plus flag and
// scalar fields sharing the same indexing scheme.
//
// The layout choice is the node-level optimization lever of the paper: the
// SoA layout stores all PDFs of one direction contiguously, enabling the
// vectorized by-direction kernels, while AoS stores all PDFs of one cell
// together, the natural layout for the generic kernel.
package field

import (
	"fmt"

	"walberla/internal/lattice"
)

// Layout selects the memory layout of a PDF field.
type Layout int

const (
	// AoS (array of structures) stores the Q PDFs of each cell
	// consecutively.
	AoS Layout = iota
	// SoA (structure of arrays) stores the PDFs of each direction in a
	// separate contiguous array, the layout required for SIMD-style
	// by-direction updates.
	SoA
)

func (l Layout) String() string {
	switch l {
	case AoS:
		return "AoS"
	case SoA:
		return "SoA"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// PDFField holds the particle distribution functions of one block: an
// Nx x Ny x Nz interior grid surrounded by a ghost layer of the given
// width. Cell (0,0,0) is the first interior cell; ghost cells have
// coordinates down to -Ghost and up to N+Ghost-1.
type PDFField struct {
	Stencil *lattice.Stencil
	Nx      int // interior cells in x
	Ny      int // interior cells in y
	Nz      int // interior cells in z
	Ghost   int // ghost layer width
	Layout  Layout

	ax, ay, az int // allocated extents including ghosts
	cells      int // ax*ay*az
	data       []float64
}

// NewPDFField allocates a PDF field of nx x ny x nz interior cells with the
// given ghost layer width and layout. All PDFs start at zero.
func NewPDFField(s *lattice.Stencil, nx, ny, nz, ghost int, layout Layout) *PDFField {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid extents %dx%dx%d", nx, ny, nz))
	}
	if ghost < 0 {
		panic("field: negative ghost layer width")
	}
	ax, ay, az := nx+2*ghost, ny+2*ghost, nz+2*ghost
	cells := ax * ay * az
	return &PDFField{
		Stencil: s,
		Nx:      nx, Ny: ny, Nz: nz,
		Ghost:  ghost,
		Layout: layout,
		ax:     ax, ay: ay, az: az,
		cells: cells,
		data:  make([]float64, cells*s.Q),
	}
}

// CellIndex converts interior-relative coordinates (ghost cells allowed,
// from -Ghost to N+Ghost-1) into the linear cell index used by Data.
func (f *PDFField) CellIndex(x, y, z int) int {
	return ((z+f.Ghost)*f.ay+(y+f.Ghost))*f.ax + (x + f.Ghost)
}

// Index returns the position of PDF (x,y,z,dir) within Data.
func (f *PDFField) Index(x, y, z int, dir lattice.Direction) int {
	ci := f.CellIndex(x, y, z)
	if f.Layout == AoS {
		return ci*f.Stencil.Q + int(dir)
	}
	return int(dir)*f.cells + ci
}

// Get returns the PDF value at (x,y,z) for direction dir.
func (f *PDFField) Get(x, y, z int, dir lattice.Direction) float64 {
	return f.data[f.Index(x, y, z, dir)]
}

// Set stores the PDF value at (x,y,z) for direction dir.
func (f *PDFField) Set(x, y, z int, dir lattice.Direction, v float64) {
	f.data[f.Index(x, y, z, dir)] = v
}

// Data exposes the raw storage for compute kernels. Layout-dependent; use
// Index or the stride accessors to address it.
func (f *PDFField) Data() []float64 { return f.data }

// DirSlice returns the contiguous per-direction array of a SoA field. It
// panics for AoS fields, where directions are interleaved.
func (f *PDFField) DirSlice(dir lattice.Direction) []float64 {
	if f.Layout != SoA {
		panic("field: DirSlice requires SoA layout")
	}
	off := int(dir) * f.cells
	return f.data[off : off+f.cells : off+f.cells]
}

// Strides returns the linear-index increments for a step in x, y and z,
// in units of cells (multiply by Q for AoS PDF offsets).
func (f *PDFField) Strides() (sx, sy, sz int) { return 1, f.ax, f.ax * f.ay }

// AllocatedCells returns the total cell count including ghost layers.
func (f *PDFField) AllocatedCells() int { return f.cells }

// InteriorCells returns Nx*Ny*Nz.
func (f *PDFField) InteriorCells() int { return f.Nx * f.Ny * f.Nz }

// FillEquilibrium sets every cell, including ghosts, to the equilibrium
// distribution for the given density and velocity.
func (f *PDFField) FillEquilibrium(rho, ux, uy, uz float64) {
	feq := make([]float64, f.Stencil.Q)
	f.Stencil.Equilibrium(feq, rho, ux, uy, uz)
	for z := -f.Ghost; z < f.Nz+f.Ghost; z++ {
		for y := -f.Ghost; y < f.Ny+f.Ghost; y++ {
			for x := -f.Ghost; x < f.Nx+f.Ghost; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					f.Set(x, y, z, lattice.Direction(a), feq[a])
				}
			}
		}
	}
}

// PackRegion serializes the PDFs of the given directions over the
// half-open cell box [lo, hi) into dst, in deterministic dir-major, then
// z, y, x order, and returns the number of values written. dst must hold
// at least len(dirs) * volume(box) values; the write is a pure sub-slice
// fill, so concurrent PackRegion calls into disjoint sub-slices of one
// aggregate buffer are race-free. For SoA fields each x-row is one
// contiguous copy.
func (f *PDFField) PackRegion(dst []float64, lo, hi [3]int, dirs []lattice.Direction) int {
	nx := hi[0] - lo[0]
	k := 0
	if f.Layout == SoA {
		for _, d := range dirs {
			ds := f.DirSlice(d)
			for z := lo[2]; z < hi[2]; z++ {
				for y := lo[1]; y < hi[1]; y++ {
					ci := f.CellIndex(lo[0], y, z)
					k += copy(dst[k:k+nx], ds[ci:ci+nx])
				}
			}
		}
		return k
	}
	for _, d := range dirs {
		for z := lo[2]; z < hi[2]; z++ {
			for y := lo[1]; y < hi[1]; y++ {
				for x := lo[0]; x < hi[0]; x++ {
					dst[k] = f.Get(x, y, z, d)
					k++
				}
			}
		}
	}
	return k
}

// UnpackRegion reverses PackRegion: it reads len(dirs) * volume(box)
// values from src into the box, in the same deterministic order, and
// returns the number of values consumed.
func (f *PDFField) UnpackRegion(src []float64, lo, hi [3]int, dirs []lattice.Direction) int {
	nx := hi[0] - lo[0]
	k := 0
	if f.Layout == SoA {
		for _, d := range dirs {
			ds := f.DirSlice(d)
			for z := lo[2]; z < hi[2]; z++ {
				for y := lo[1]; y < hi[1]; y++ {
					ci := f.CellIndex(lo[0], y, z)
					k += copy(ds[ci:ci+nx], src[k:k+nx])
				}
			}
		}
		return k
	}
	for _, d := range dirs {
		for z := lo[2]; z < hi[2]; z++ {
			for y := lo[1]; y < hi[1]; y++ {
				for x := lo[0]; x < hi[0]; x++ {
					f.Set(x, y, z, d, src[k])
					k++
				}
			}
		}
	}
	return k
}

// CopyRegion copies the PDFs of the given directions over the half-open
// box [srcLo, srcHi) of src into the identically shaped box starting at
// dstLo of dst — the zero-staging path for ghost exchange between blocks
// of the same rank. Both fields must share stencil and layout.
func CopyRegion(dst *PDFField, dstLo [3]int, src *PDFField, srcLo, srcHi [3]int, dirs []lattice.Direction) {
	if dst.Stencil != src.Stencil || dst.Layout != src.Layout {
		panic("field: CopyRegion requires matching stencil and layout")
	}
	nx := srcHi[0] - srcLo[0]
	if src.Layout == SoA {
		for _, d := range dirs {
			ss, ds := src.DirSlice(d), dst.DirSlice(d)
			for z := srcLo[2]; z < srcHi[2]; z++ {
				for y := srcLo[1]; y < srcHi[1]; y++ {
					si := src.CellIndex(srcLo[0], y, z)
					di := dst.CellIndex(dstLo[0], dstLo[1]+(y-srcLo[1]), dstLo[2]+(z-srcLo[2]))
					copy(ds[di:di+nx], ss[si:si+nx])
				}
			}
		}
		return
	}
	for _, d := range dirs {
		for z := srcLo[2]; z < srcHi[2]; z++ {
			for y := srcLo[1]; y < srcHi[1]; y++ {
				for x := srcLo[0]; x < srcHi[0]; x++ {
					dst.Set(dstLo[0]+(x-srcLo[0]), dstLo[1]+(y-srcLo[1]), dstLo[2]+(z-srcLo[2]), d,
						src.Get(x, y, z, d))
				}
			}
		}
	}
}

// CopyShape allocates a new zeroed field with identical shape, ghost width,
// stencil and layout — the destination field of a stream-pull update.
func (f *PDFField) CopyShape() *PDFField {
	return NewPDFField(f.Stencil, f.Nx, f.Ny, f.Nz, f.Ghost, f.Layout)
}

// ConvertLayout returns a copy of the field in the requested layout.
func (f *PDFField) ConvertLayout(layout Layout) *PDFField {
	out := NewPDFField(f.Stencil, f.Nx, f.Ny, f.Nz, f.Ghost, layout)
	for z := -f.Ghost; z < f.Nz+f.Ghost; z++ {
		for y := -f.Ghost; y < f.Ny+f.Ghost; y++ {
			for x := -f.Ghost; x < f.Nx+f.Ghost; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					out.Set(x, y, z, lattice.Direction(a), f.Get(x, y, z, lattice.Direction(a)))
				}
			}
		}
	}
	return out
}

// Swap exchanges the storage of two fields with identical shapes. It is the
// cheap src/dst exchange at the end of a stream-pull time step.
func Swap(a, b *PDFField) {
	if a.Nx != b.Nx || a.Ny != b.Ny || a.Nz != b.Nz || a.Ghost != b.Ghost ||
		a.Layout != b.Layout || a.Stencil != b.Stencil {
		panic("field: Swap requires identically shaped fields")
	}
	a.data, b.data = b.data, a.data
}

// Moments computes density and velocity of the interior cell (x,y,z).
func (f *PDFField) Moments(x, y, z int) (rho, ux, uy, uz float64) {
	q := f.Stencil.Q
	tmp := make([]float64, q)
	for a := 0; a < q; a++ {
		tmp[a] = f.Get(x, y, z, lattice.Direction(a))
	}
	return f.Stencil.Moments(tmp)
}

// TotalMass sums the density over all interior cells; with periodic or
// bounce-back boundaries a correct LBM step conserves it exactly (up to
// floating point rounding).
func (f *PDFField) TotalMass() float64 {
	var m float64
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					m += f.Get(x, y, z, lattice.Direction(a))
				}
			}
		}
	}
	return m
}
