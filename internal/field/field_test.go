package field

import (
	"math"
	"testing"
	"testing/quick"

	"walberla/internal/lattice"
)

func TestNewPDFFieldShape(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 4, 5, 6, 1, AoS)
	if f.InteriorCells() != 4*5*6 {
		t.Errorf("InteriorCells = %d, want %d", f.InteriorCells(), 4*5*6)
	}
	if f.AllocatedCells() != 6*7*8 {
		t.Errorf("AllocatedCells = %d, want %d", f.AllocatedCells(), 6*7*8)
	}
	if len(f.Data()) != 6*7*8*19 {
		t.Errorf("len(Data) = %d, want %d", len(f.Data()), 6*7*8*19)
	}
}

func TestPDFFieldGetSetRoundTrip(t *testing.T) {
	s := lattice.D3Q19()
	for _, layout := range []Layout{AoS, SoA} {
		f := NewPDFField(s, 3, 4, 5, 1, layout)
		// Write a unique value into every slot including ghosts, read back.
		v := 0.0
		for z := -1; z < f.Nz+1; z++ {
			for y := -1; y < f.Ny+1; y++ {
				for x := -1; x < f.Nx+1; x++ {
					for a := 0; a < s.Q; a++ {
						f.Set(x, y, z, lattice.Direction(a), v)
						v++
					}
				}
			}
		}
		v = 0.0
		for z := -1; z < f.Nz+1; z++ {
			for y := -1; y < f.Ny+1; y++ {
				for x := -1; x < f.Nx+1; x++ {
					for a := 0; a < s.Q; a++ {
						if got := f.Get(x, y, z, lattice.Direction(a)); got != v {
							t.Fatalf("%v: Get(%d,%d,%d,%d) = %v, want %v", layout, x, y, z, a, got, v)
						}
						v++
					}
				}
			}
		}
	}
}

// All Index values must be distinct and within bounds — the indexing maps
// cells and directions bijectively onto the storage.
func TestIndexBijective(t *testing.T) {
	s := lattice.D2Q9()
	for _, layout := range []Layout{AoS, SoA} {
		f := NewPDFField(s, 3, 3, 2, 1, layout)
		seen := make(map[int]bool)
		for z := -1; z < f.Nz+1; z++ {
			for y := -1; y < f.Ny+1; y++ {
				for x := -1; x < f.Nx+1; x++ {
					for a := 0; a < s.Q; a++ {
						i := f.Index(x, y, z, lattice.Direction(a))
						if i < 0 || i >= len(f.Data()) {
							t.Fatalf("%v: index %d out of bounds", layout, i)
						}
						if seen[i] {
							t.Fatalf("%v: duplicate index %d", layout, i)
						}
						seen[i] = true
					}
				}
			}
		}
		if len(seen) != len(f.Data()) {
			t.Errorf("%v: covered %d of %d slots", layout, len(seen), len(f.Data()))
		}
	}
}

func TestSoADirSliceContiguity(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 4, 4, 4, 1, SoA)
	for a := 0; a < s.Q; a++ {
		sl := f.DirSlice(lattice.Direction(a))
		if len(sl) != f.AllocatedCells() {
			t.Fatalf("DirSlice(%d) length %d, want %d", a, len(sl), f.AllocatedCells())
		}
	}
	// Writing through the direction slice must be visible through Get.
	sl := f.DirSlice(lattice.E)
	sl[f.CellIndex(1, 2, 3)] = 42.0
	if got := f.Get(1, 2, 3, lattice.E); got != 42.0 {
		t.Errorf("Get after DirSlice write = %v, want 42", got)
	}
}

func TestDirSlicePanicsOnAoS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DirSlice on AoS field did not panic")
		}
	}()
	NewPDFField(lattice.D3Q19(), 2, 2, 2, 1, AoS).DirSlice(0)
}

func TestConvertLayoutPreservesValues(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 3, 4, 2, 1, AoS)
	v := 1.0
	for z := -1; z < f.Nz+1; z++ {
		for y := -1; y < f.Ny+1; y++ {
			for x := -1; x < f.Nx+1; x++ {
				for a := 0; a < s.Q; a++ {
					f.Set(x, y, z, lattice.Direction(a), v)
					v *= 1.0000001
				}
			}
		}
	}
	g := f.ConvertLayout(SoA)
	h := g.ConvertLayout(AoS)
	for z := -1; z < f.Nz+1; z++ {
		for y := -1; y < f.Ny+1; y++ {
			for x := -1; x < f.Nx+1; x++ {
				for a := 0; a < s.Q; a++ {
					d := lattice.Direction(a)
					if f.Get(x, y, z, d) != g.Get(x, y, z, d) || f.Get(x, y, z, d) != h.Get(x, y, z, d) {
						t.Fatalf("layout round trip altered value at (%d,%d,%d,%d)", x, y, z, a)
					}
				}
			}
		}
	}
}

func TestFillEquilibriumAndMoments(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 4, 4, 4, 1, SoA)
	f.FillEquilibrium(1.2, 0.02, -0.01, 0.05)
	rho, ux, uy, uz := f.Moments(2, 2, 2)
	if math.Abs(rho-1.2) > 1e-13 || math.Abs(ux-0.02) > 1e-13 ||
		math.Abs(uy+0.01) > 1e-13 || math.Abs(uz-0.05) > 1e-13 {
		t.Errorf("moments (%v, %v, %v, %v), want (1.2, 0.02, -0.01, 0.05)", rho, ux, uy, uz)
	}
}

func TestTotalMass(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 3, 3, 3, 1, AoS)
	f.FillEquilibrium(1.0, 0, 0, 0)
	want := float64(f.InteriorCells())
	if got := f.TotalMass(); math.Abs(got-want) > 1e-10 {
		t.Errorf("TotalMass = %v, want %v", got, want)
	}
}

func TestSwap(t *testing.T) {
	s := lattice.D3Q19()
	a := NewPDFField(s, 2, 2, 2, 1, SoA)
	b := NewPDFField(s, 2, 2, 2, 1, SoA)
	a.Set(0, 0, 0, lattice.C, 7)
	b.Set(0, 0, 0, lattice.C, 9)
	Swap(a, b)
	if a.Get(0, 0, 0, lattice.C) != 9 || b.Get(0, 0, 0, lattice.C) != 7 {
		t.Error("Swap did not exchange storage")
	}
}

func TestSwapPanicsOnShapeMismatch(t *testing.T) {
	s := lattice.D3Q19()
	a := NewPDFField(s, 2, 2, 2, 1, SoA)
	b := NewPDFField(s, 2, 2, 3, 1, SoA)
	defer func() {
		if recover() == nil {
			t.Error("Swap with mismatched shapes did not panic")
		}
	}()
	Swap(a, b)
}

func TestCopyShape(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 5, 3, 2, 1, SoA)
	g := f.CopyShape()
	if g.Nx != 5 || g.Ny != 3 || g.Nz != 2 || g.Ghost != 1 || g.Layout != SoA {
		t.Error("CopyShape changed the shape")
	}
	for _, v := range g.Data() {
		if v != 0 {
			t.Fatal("CopyShape result not zeroed")
		}
	}
}

func TestFlagFieldBasics(t *testing.T) {
	f := NewFlagField(4, 4, 4, 1)
	if f.Get(0, 0, 0) != Outside {
		t.Error("new flag field must start Outside")
	}
	f.FillInterior(Fluid)
	if f.Count(Fluid) != 64 {
		t.Errorf("Count(Fluid) = %d, want 64", f.Count(Fluid))
	}
	if f.Get(-1, 0, 0) != Outside {
		t.Error("FillInterior must not touch ghost cells")
	}
	f.Set(1, 1, 1, NoSlip)
	if f.Count(Fluid) != 63 || f.Count(NoSlip) != 1 {
		t.Error("Set/Count mismatch")
	}
	if got := f.FluidFraction(); math.Abs(got-63.0/64.0) > 1e-15 {
		t.Errorf("FluidFraction = %v, want %v", got, 63.0/64.0)
	}
}

func TestCellTypeClassification(t *testing.T) {
	if Outside.IsBoundary() || Fluid.IsBoundary() {
		t.Error("Outside/Fluid must not be boundary types")
	}
	for _, c := range []CellType{NoSlip, VelocityBounce, PressureBounce} {
		if !c.IsBoundary() {
			t.Errorf("%v must be a boundary type", c)
		}
	}
}

func TestCellTypeStrings(t *testing.T) {
	names := map[CellType]string{
		Outside: "Outside", Fluid: "Fluid", NoSlip: "NoSlip",
		VelocityBounce: "VelocityBounce", PressureBounce: "PressureBounce",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", uint8(c), c.String(), want)
		}
	}
}

func TestScalarFieldRoundTrip(t *testing.T) {
	f := NewScalarField(3, 4, 5)
	v := 0.0
	for z := 0; z < 5; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 3; x++ {
				f.Set(x, y, z, v)
				v++
			}
		}
	}
	v = 0.0
	for z := 0; z < 5; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 3; x++ {
				if f.Get(x, y, z) != v {
					t.Fatalf("Get(%d,%d,%d) = %v, want %v", x, y, z, f.Get(x, y, z), v)
				}
				v++
			}
		}
	}
}

func TestVectorFieldRoundTrip(t *testing.T) {
	f := NewVectorField(3, 3, 3)
	f.Set(1, 2, 0, 1.5, -2.5, 3.5)
	vx, vy, vz := f.Get(1, 2, 0)
	if vx != 1.5 || vy != -2.5 || vz != 3.5 {
		t.Errorf("Get = (%v,%v,%v), want (1.5,-2.5,3.5)", vx, vy, vz)
	}
	// Unset cells stay zero.
	vx, vy, vz = f.Get(0, 0, 0)
	if vx != 0 || vy != 0 || vz != 0 {
		t.Error("unset cell not zero")
	}
}

// Property: for arbitrary (small) shapes, indices of distinct coordinates
// never collide in either layout.
func TestIndexUniqueProperty(t *testing.T) {
	s := lattice.D2Q9()
	f := func(nx, ny, nz uint8) bool {
		x := int(nx%4) + 1
		y := int(ny%4) + 1
		z := int(nz%4) + 1
		for _, layout := range []Layout{AoS, SoA} {
			fld := NewPDFField(s, x, y, z, 1, layout)
			seen := map[int]bool{}
			total := 0
			for zz := -1; zz < z+1; zz++ {
				for yy := -1; yy < y+1; yy++ {
					for xx := -1; xx < x+1; xx++ {
						for a := 0; a < s.Q; a++ {
							i := fld.Index(xx, yy, zz, lattice.Direction(a))
							if seen[i] {
								return false
							}
							seen[i] = true
							total++
						}
					}
				}
			}
			if total != len(fld.Data()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
