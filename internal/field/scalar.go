package field

import "fmt"

// ScalarField is a simple Nx x Ny x Nz grid of float64 values without ghost
// layers, used for output quantities such as density or velocity magnitude.
type ScalarField struct {
	Nx, Ny, Nz int
	data       []float64
}

// NewScalarField allocates a zeroed scalar field.
func NewScalarField(nx, ny, nz int) *ScalarField {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid extents %dx%dx%d", nx, ny, nz))
	}
	return &ScalarField{Nx: nx, Ny: ny, Nz: nz, data: make([]float64, nx*ny*nz)}
}

// Index converts coordinates to a linear index.
func (f *ScalarField) Index(x, y, z int) int { return (z*f.Ny+y)*f.Nx + x }

// Get returns the value at (x,y,z).
func (f *ScalarField) Get(x, y, z int) float64 { return f.data[f.Index(x, y, z)] }

// Set stores the value at (x,y,z).
func (f *ScalarField) Set(x, y, z int, v float64) { f.data[f.Index(x, y, z)] = v }

// Data exposes the raw storage in z-major order.
func (f *ScalarField) Data() []float64 { return f.data }

// VectorField stores a 3-component vector per cell, component-major (SoA).
type VectorField struct {
	Nx, Ny, Nz int
	data       []float64 // 3 * Nx*Ny*Nz, component-major
}

// NewVectorField allocates a zeroed vector field.
func NewVectorField(nx, ny, nz int) *VectorField {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid extents %dx%dx%d", nx, ny, nz))
	}
	return &VectorField{Nx: nx, Ny: ny, Nz: nz, data: make([]float64, 3*nx*ny*nz)}
}

func (f *VectorField) cells() int { return f.Nx * f.Ny * f.Nz }

// Index converts coordinates to the cell index (add c*cells for component c).
func (f *VectorField) Index(x, y, z int) int { return (z*f.Ny+y)*f.Nx + x }

// Get returns the vector at (x,y,z).
func (f *VectorField) Get(x, y, z int) (vx, vy, vz float64) {
	i := f.Index(x, y, z)
	n := f.cells()
	return f.data[i], f.data[n+i], f.data[2*n+i]
}

// Set stores the vector at (x,y,z).
func (f *VectorField) Set(x, y, z int, vx, vy, vz float64) {
	i := f.Index(x, y, z)
	n := f.cells()
	f.data[i], f.data[n+i], f.data[2*n+i] = vx, vy, vz
}
