package field

import "fmt"

// CellType classifies a lattice cell for the sparse kernels and the
// boundary handling. The zero value is Outside: a cell that belongs to
// neither the fluid domain nor its boundary hull (the "superfluous" cells
// of partially covered blocks in the paper).
type CellType uint8

const (
	// Outside marks cells beyond the domain and its boundary hull; the
	// sparse kernels skip them entirely.
	Outside CellType = iota
	// Fluid marks interior cells updated by the stream-collide kernel.
	Fluid
	// NoSlip marks solid wall cells treated with bounce-back.
	NoSlip
	// VelocityBounce marks inflow cells with a prescribed velocity
	// (velocity bounce-back).
	VelocityBounce
	// PressureBounce marks outflow cells with a prescribed density
	// (pressure anti-bounce-back).
	PressureBounce
	numCellTypes
)

func (c CellType) String() string {
	switch c {
	case Outside:
		return "Outside"
	case Fluid:
		return "Fluid"
	case NoSlip:
		return "NoSlip"
	case VelocityBounce:
		return "VelocityBounce"
	case PressureBounce:
		return "PressureBounce"
	}
	return fmt.Sprintf("CellType(%d)", uint8(c))
}

// IsBoundary reports whether the cell type is one of the boundary
// conditions (anything that is neither Fluid nor Outside).
func (c CellType) IsBoundary() bool {
	return c == NoSlip || c == VelocityBounce || c == PressureBounce
}

// FlagField stores one CellType per cell on the same ghost-extended grid as
// a PDFField.
type FlagField struct {
	Nx, Ny, Nz int
	Ghost      int
	ax, ay, az int
	data       []CellType
}

// NewFlagField allocates a flag field; all cells start as Outside.
func NewFlagField(nx, ny, nz, ghost int) *FlagField {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid extents %dx%dx%d", nx, ny, nz))
	}
	ax, ay, az := nx+2*ghost, ny+2*ghost, nz+2*ghost
	return &FlagField{
		Nx: nx, Ny: ny, Nz: nz, Ghost: ghost,
		ax: ax, ay: ay, az: az,
		data: make([]CellType, ax*ay*az),
	}
}

// Index converts coordinates (ghost range allowed) to a linear index.
func (f *FlagField) Index(x, y, z int) int {
	return ((z+f.Ghost)*f.ay+(y+f.Ghost))*f.ax + (x + f.Ghost)
}

// Get returns the type of cell (x,y,z).
func (f *FlagField) Get(x, y, z int) CellType { return f.data[f.Index(x, y, z)] }

// Set stores the type of cell (x,y,z).
func (f *FlagField) Set(x, y, z int, c CellType) { f.data[f.Index(x, y, z)] = c }

// Fill sets every cell, including ghosts, to the given type.
func (f *FlagField) Fill(c CellType) {
	for i := range f.data {
		f.data[i] = c
	}
}

// FillInterior sets all interior cells to the given type, leaving ghosts
// untouched.
func (f *FlagField) FillInterior(c CellType) {
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				f.Set(x, y, z, c)
			}
		}
	}
}

// Count returns the number of interior cells of the given type.
func (f *FlagField) Count(c CellType) int {
	n := 0
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				if f.Get(x, y, z) == c {
					n++
				}
			}
		}
	}
	return n
}

// FluidFraction returns the fraction of interior cells marked Fluid; this
// is the per-block workload measure used for load balancing and the
// quantity plotted in the paper's Figure 7.
func (f *FlagField) FluidFraction() float64 {
	return float64(f.Count(Fluid)) / float64(f.Nx*f.Ny*f.Nz)
}

// Data exposes the raw flag storage (including ghost cells).
func (f *FlagField) Data() []CellType { return f.data }

// Strides returns the linear-index increments for steps in x, y, z.
func (f *FlagField) Strides() (sx, sy, sz int) { return 1, f.ax, f.ax * f.ay }
