package field

import (
	"testing"

	"walberla/internal/lattice"
)

func TestLayoutStrings(t *testing.T) {
	if AoS.String() != "AoS" || SoA.String() != "SoA" {
		t.Error("layout names wrong")
	}
	if Layout(9).String() != "Layout(9)" {
		t.Errorf("invalid layout string %q", Layout(9).String())
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	s := lattice.D3Q19()
	mustPanic("zero extent PDF", func() { NewPDFField(s, 0, 4, 4, 1, AoS) })
	mustPanic("negative ghost", func() { NewPDFField(s, 4, 4, 4, -1, AoS) })
	mustPanic("zero extent flags", func() { NewFlagField(4, 0, 4, 1) })
	mustPanic("zero extent scalar", func() { NewScalarField(4, 4, 0) })
	mustPanic("zero extent vector", func() { NewVectorField(0, 1, 1) })
}

func TestStrides(t *testing.T) {
	s := lattice.D3Q19()
	f := NewPDFField(s, 4, 5, 6, 1, SoA)
	sx, sy, sz := f.Strides()
	if sx != 1 || sy != 6 || sz != 6*7 {
		t.Errorf("PDF strides (%d,%d,%d)", sx, sy, sz)
	}
	// Stride consistency with CellIndex.
	if f.CellIndex(1, 0, 0)-f.CellIndex(0, 0, 0) != sx ||
		f.CellIndex(0, 1, 0)-f.CellIndex(0, 0, 0) != sy ||
		f.CellIndex(0, 0, 1)-f.CellIndex(0, 0, 0) != sz {
		t.Error("strides inconsistent with CellIndex")
	}
	fl := NewFlagField(4, 5, 6, 1)
	fx, fy, fz := fl.Strides()
	if fx != 1 || fy != 6 || fz != 42 {
		t.Errorf("flag strides (%d,%d,%d)", fx, fy, fz)
	}
	if len(fl.Data()) != 6*7*8 {
		t.Errorf("flag data length %d", len(fl.Data()))
	}
}

func TestFlagFill(t *testing.T) {
	f := NewFlagField(3, 3, 3, 1)
	f.Fill(NoSlip)
	for _, v := range f.Data() {
		if v != NoSlip {
			t.Fatal("Fill missed a cell")
		}
	}
}

func TestScalarFieldData(t *testing.T) {
	f := NewScalarField(2, 3, 4)
	if len(f.Data()) != 24 {
		t.Errorf("data length %d", len(f.Data()))
	}
	f.Data()[f.Index(1, 2, 3)] = 5
	if f.Get(1, 2, 3) != 5 {
		t.Error("Data not aliased with Get")
	}
}

func TestGhostZeroField(t *testing.T) {
	// A ghost-free field is legal for pure post-processing containers.
	s := lattice.D2Q9()
	f := NewPDFField(s, 3, 3, 1, 0, AoS)
	if f.AllocatedCells() != 9 {
		t.Errorf("allocated %d, want 9", f.AllocatedCells())
	}
	f.Set(2, 2, 0, lattice.Direction(4), 1.5)
	if f.Get(2, 2, 0, lattice.Direction(4)) != 1.5 {
		t.Error("round trip failed")
	}
}
