package mesh

import (
	"bytes"
	"math"
	"testing"

	"walberla/internal/blockforest"
)

func unitBox() blockforest.AABB {
	return blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
}

func TestBoxMesh(t *testing.T) {
	m := NewBox(unitBox())
	if m.TriangleCount() != 12 || m.VertexCount() != 8 {
		t.Fatalf("box: %d triangles, %d vertices", m.TriangleCount(), m.VertexCount())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckWatertight(); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalArea(); math.Abs(got-6) > 1e-12 {
		t.Errorf("box area = %v, want 6", got)
	}
	b := m.Bounds()
	if b.Min != [3]float64{0, 0, 0} || b.Max != [3]float64{1, 1, 1} {
		t.Errorf("Bounds = %+v", b)
	}
}

// All box face normals must point away from the center — the winding
// convention every signed-distance computation relies on.
func TestBoxNormalsOutward(t *testing.T) {
	m := NewBox(unitBox())
	center := [3]float64{0.5, 0.5, 0.5}
	for tr := range m.Triangles {
		n := m.UnitNormal(tr)
		a, b, c := m.TriangleVertices(tr)
		centroid := Scale(Add(Add(a, b), c), 1.0/3.0)
		if Dot(n, Sub(centroid, center)) <= 0 {
			t.Errorf("triangle %d normal points inward", tr)
		}
	}
}

func TestSphereMesh(t *testing.T) {
	m := NewSphere([3]float64{1, 2, 3}, 0.5, 2)
	if err := m.CheckWatertight(); err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() != 20*16 {
		t.Errorf("triangles = %d, want 320", m.TriangleCount())
	}
	// All vertices on the sphere.
	for _, v := range m.Vertices {
		r := Norm(Sub(v, [3]float64{1, 2, 3}))
		if math.Abs(r-0.5) > 1e-12 {
			t.Fatalf("vertex radius %v, want 0.5", r)
		}
	}
	// Area approaches 4 pi r^2 from below.
	want := 4 * math.Pi * 0.25
	if a := m.TotalArea(); a > want || a < 0.95*want {
		t.Errorf("sphere area %v, want slightly below %v", a, want)
	}
	// Outward normals.
	for tr := range m.Triangles {
		a, b, c := m.TriangleVertices(tr)
		centroid := Scale(Add(Add(a, b), c), 1.0/3.0)
		if Dot(m.UnitNormal(tr), Sub(centroid, [3]float64{1, 2, 3})) <= 0 {
			t.Fatalf("triangle %d normal points inward", tr)
		}
	}
}

func TestTubeMesh(t *testing.T) {
	m := NewTube([3]float64{0, 0, 0}, [3]float64{0, 0, 2}, 0.3, 16, ColorInflow, ColorOutflow)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckWatertight(); err != nil {
		t.Fatal(err)
	}
	// Expected area: side 2*pi*r*h plus two caps pi*r^2 (polygonal, less).
	side := 2 * math.Pi * 0.3 * 2
	caps := 2 * math.Pi * 0.3 * 0.3
	if a := m.TotalArea(); a > side+caps || a < 0.95*(side+caps) {
		t.Errorf("tube area %v, want slightly below %v", a, side+caps)
	}
	// Cap centers carry the inflow/outflow colors.
	foundIn, foundOut := false, false
	for _, c := range m.Colors {
		if c == ColorInflow {
			foundIn = true
		}
		if c == ColorOutflow {
			foundOut = true
		}
	}
	if !foundIn || !foundOut {
		t.Error("tube lost cap colors")
	}
	// Outward normals w.r.t. the axis midpoint.
	mid := [3]float64{0, 0, 1}
	for tr := range m.Triangles {
		a, b, c := m.TriangleVertices(tr)
		centroid := Scale(Add(Add(a, b), c), 1.0/3.0)
		if Dot(m.UnitNormal(tr), Sub(centroid, mid)) <= 0 {
			t.Fatalf("triangle %d normal points inward", tr)
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewBox(unitBox())
	b := NewSphere([3]float64{3, 0, 0}, 0.5, 0)
	m := Merge(a, b)
	if m.VertexCount() != a.VertexCount()+b.VertexCount() {
		t.Errorf("merged vertices = %d", m.VertexCount())
	}
	if m.TriangleCount() != a.TriangleCount()+b.TriangleCount() {
		t.Errorf("merged triangles = %d", m.TriangleCount())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckWatertight(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleColor(t *testing.T) {
	const segments = 8
	m := NewTube([3]float64{0, 0, 0}, [3]float64{0, 0, 1}, 0.2, segments, ColorInflow, ColorOutflow)
	in, out, wall := 0, 0, 0
	for tr := range m.Triangles {
		switch m.TriangleColor(tr) {
		case ColorInflow:
			in++
		case ColorOutflow:
			out++
		case ColorWall:
			wall++
		}
	}
	if in != segments || out != segments || wall != 2*segments {
		t.Errorf("colors: %d inflow, %d outflow, %d wall; want %d/%d/%d",
			in, out, wall, segments, segments, 2*segments)
	}
	uncolored := &Mesh{Vertices: m.Vertices, Triangles: m.Triangles}
	if uncolored.TriangleColor(0) != ColorWall {
		t.Error("uncolored mesh must default to wall")
	}
	// Vertex-majority fallback: two same-colored vertices win.
	vm := &Mesh{
		Vertices:  [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}},
		Colors:    []Color{ColorInflow, ColorOutflow, ColorOutflow},
		Triangles: [][3]int32{{0, 1, 2}},
	}
	if vm.TriangleColor(0) != ColorOutflow {
		t.Error("vertex majority vote failed")
	}
}

func TestValidateCatchesBadMesh(t *testing.T) {
	m := &Mesh{
		Vertices:  [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}},
		Triangles: [][3]int32{{0, 1, 5}},
	}
	if m.Validate() == nil {
		t.Error("out-of-range index not caught")
	}
	m.Triangles = [][3]int32{{0, 1, 1}}
	if m.Validate() == nil {
		t.Error("degenerate triangle not caught")
	}
	m.Triangles = [][3]int32{{0, 1, 2}}
	m.Colors = []Color{{}, {}}
	if m.Validate() == nil {
		t.Error("color length mismatch not caught")
	}
}

func TestCheckWatertightCatchesHole(t *testing.T) {
	m := NewBox(unitBox())
	m.Triangles = m.Triangles[:len(m.Triangles)-1]
	if m.CheckWatertight() == nil {
		t.Error("hole not detected")
	}
}

func TestSTLRoundTrip(t *testing.T) {
	m := NewSphere([3]float64{0, 0, 0}, 1, 1)
	var buf bytes.Buffer
	if err := m.WriteSTL(&buf); err != nil {
		t.Fatal(err)
	}
	// 80-byte header + 4 + 50 per triangle.
	if want := 84 + 50*m.TriangleCount(); buf.Len() != want {
		t.Errorf("STL size = %d, want %d", buf.Len(), want)
	}
	g, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.TriangleCount() != m.TriangleCount() {
		t.Errorf("triangles: %d, want %d", g.TriangleCount(), m.TriangleCount())
	}
	// Vertex dedup must recover the indexed structure (float32 rounding
	// may merge none here because coordinates are exact duplicates).
	if g.VertexCount() != m.VertexCount() {
		t.Errorf("vertices: %d, want %d", g.VertexCount(), m.VertexCount())
	}
	if err := g.CheckWatertight(); err != nil {
		t.Error(err)
	}
}

func TestColoredFormatRoundTrip(t *testing.T) {
	m := NewTube([3]float64{0, 1, 0}, [3]float64{2, 1, 0}, 0.4, 12, ColorInflow, ColorOutflow)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.VertexCount() != m.VertexCount() || g.TriangleCount() != m.TriangleCount() {
		t.Fatal("counts differ after round trip")
	}
	for i := range m.Vertices {
		if m.Vertices[i] != g.Vertices[i] {
			t.Fatalf("vertex %d differs", i)
		}
		if m.Colors[i] != g.Colors[i] {
			t.Fatalf("color %d differs", i)
		}
	}
	for i := range m.Triangles {
		if m.Triangles[i] != g.Triangles[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
	if g.TriColors == nil {
		t.Fatal("triangle colors lost in round trip")
	}
	for i := range m.TriColors {
		if m.TriColors[i] != g.TriColors[i] {
			t.Fatalf("triangle color %d differs", i)
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTransform(t *testing.T) {
	m := NewBox(unitBox())
	m.Transform(2, [3]float64{1, 0, -1})
	b := m.Bounds()
	if b.Min != [3]float64{1, 0, -1} || b.Max != [3]float64{3, 2, 1} {
		t.Errorf("transformed bounds %+v", b)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := [3]float64{1, 2, 3}
	b := [3]float64{4, 5, 6}
	if Sub(b, a) != [3]float64{3, 3, 3} || Add(a, b) != [3]float64{5, 7, 9} {
		t.Error("Sub/Add wrong")
	}
	if Dot(a, b) != 32 {
		t.Error("Dot wrong")
	}
	if Cross([3]float64{1, 0, 0}, [3]float64{0, 1, 0}) != [3]float64{0, 0, 1} {
		t.Error("Cross wrong")
	}
	if Norm([3]float64{3, 4, 0}) != 5 {
		t.Error("Norm wrong")
	}
	n := Normalize([3]float64{0, 0, 9})
	if n != [3]float64{0, 0, 1} {
		t.Error("Normalize wrong")
	}
	if Normalize([3]float64{0, 0, 0}) != [3]float64{0, 0, 0} {
		t.Error("Normalize of zero must stay zero")
	}
}
