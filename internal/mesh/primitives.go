package mesh

import (
	"math"

	"walberla/internal/blockforest"
)

// NewBox returns a watertight triangle mesh of the box (12 triangles) with
// outward-facing normals. All vertices are colored ColorWall.
func NewBox(b blockforest.AABB) *Mesh {
	v := make([][3]float64, 8)
	for i := 0; i < 8; i++ {
		for d := 0; d < 3; d++ {
			if i>>d&1 == 1 {
				v[i][d] = b.Max[d]
			} else {
				v[i][d] = b.Min[d]
			}
		}
	}
	// Each face as two triangles, wound counterclockwise seen from outside.
	tris := [][3]int32{
		{0, 2, 1}, {1, 2, 3}, // -z
		{4, 5, 6}, {5, 7, 6}, // +z
		{0, 1, 4}, {1, 5, 4}, // -y
		{2, 6, 3}, {3, 6, 7}, // +y
		{0, 4, 2}, {2, 4, 6}, // -x
		{1, 3, 5}, {3, 7, 5}, // +x
	}
	colors := make([]Color, 8)
	for i := range colors {
		colors[i] = ColorWall
	}
	return &Mesh{Vertices: v, Colors: colors, Triangles: tris}
}

// NewSphere returns a watertight icosphere approximation of the sphere
// with the given center and radius after the given number of subdivision
// steps (0 yields the icosahedron, each step quadruples the triangles).
func NewSphere(center [3]float64, radius float64, subdivisions int) *Mesh {
	t := (1.0 + math.Sqrt(5.0)) / 2.0
	verts := [][3]float64{
		{-1, t, 0}, {1, t, 0}, {-1, -t, 0}, {1, -t, 0},
		{0, -1, t}, {0, 1, t}, {0, -1, -t}, {0, 1, -t},
		{t, 0, -1}, {t, 0, 1}, {-t, 0, -1}, {-t, 0, 1},
	}
	tris := [][3]int32{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	type ek struct{ a, b int32 }
	for s := 0; s < subdivisions; s++ {
		mid := make(map[ek]int32)
		midpoint := func(a, b int32) int32 {
			k := ek{a, b}
			if a > b {
				k = ek{b, a}
			}
			if i, ok := mid[k]; ok {
				return i
			}
			m := Scale(Add(verts[a], verts[b]), 0.5)
			verts = append(verts, m)
			mid[k] = int32(len(verts) - 1)
			return mid[k]
		}
		next := make([][3]int32, 0, 4*len(tris))
		for _, tri := range tris {
			ab := midpoint(tri[0], tri[1])
			bc := midpoint(tri[1], tri[2])
			ca := midpoint(tri[2], tri[0])
			next = append(next,
				[3]int32{tri[0], ab, ca},
				[3]int32{tri[1], bc, ab},
				[3]int32{tri[2], ca, bc},
				[3]int32{ab, bc, ca})
		}
		tris = next
	}
	colors := make([]Color, len(verts))
	for i := range verts {
		verts[i] = Add(center, Scale(Normalize(verts[i]), radius))
		colors[i] = ColorWall
	}
	return &Mesh{Vertices: verts, Colors: colors, Triangles: tris}
}

// NewTube returns a watertight capped cylinder from p0 to p1 with the given
// radius and number of circumferential segments. The caps are fans around
// center vertices; capColor0 and capColor1 color the cap at p0 and p1
// respectively (the tube side is ColorWall), so tubes double as colored
// inflow/outflow channels.
func NewTube(p0, p1 [3]float64, radius float64, segments int, capColor0, capColor1 Color) *Mesh {
	if segments < 3 {
		segments = 3
	}
	axis := Normalize(Sub(p1, p0))
	// Build an orthonormal frame around the axis.
	ref := [3]float64{1, 0, 0}
	if math.Abs(axis[0]) > 0.9 {
		ref = [3]float64{0, 1, 0}
	}
	u := Normalize(Cross(axis, ref))
	w := Cross(axis, u)

	var verts [][3]float64
	var colors []Color
	ring := func(center [3]float64, col Color) int32 {
		start := int32(len(verts))
		for s := 0; s < segments; s++ {
			phi := 2 * math.Pi * float64(s) / float64(segments)
			dir := Add(Scale(u, math.Cos(phi)), Scale(w, math.Sin(phi)))
			verts = append(verts, Add(center, Scale(dir, radius)))
			colors = append(colors, col)
		}
		return start
	}
	r0 := ring(p0, ColorWall)
	r1 := ring(p1, ColorWall)
	c0 := int32(len(verts))
	verts = append(verts, p0)
	colors = append(colors, capColor0)
	c1 := int32(len(verts))
	verts = append(verts, p1)
	colors = append(colors, capColor1)

	var tris [][3]int32
	var triColors []Color
	for s := 0; s < segments; s++ {
		sn := (s + 1) % segments
		a0, a1 := r0+int32(s), r0+int32(sn)
		b0, b1 := r1+int32(s), r1+int32(sn)
		// Side quad (outward normals).
		tris = append(tris, [3]int32{a0, a1, b0}, [3]int32{a1, b1, b0})
		triColors = append(triColors, ColorWall, ColorWall)
		// Caps.
		tris = append(tris, [3]int32{c0, a1, a0}, [3]int32{c1, b0, b1})
		triColors = append(triColors, capColor0, capColor1)
	}
	return &Mesh{Vertices: verts, Colors: colors, Triangles: tris, TriColors: triColors}
}

// Merge concatenates meshes into one (vertices are not deduplicated; the
// result is watertight only if each part is).
func Merge(meshes ...*Mesh) *Mesh {
	out := &Mesh{}
	colored, triColored := false, false
	for _, m := range meshes {
		if m.Colors != nil {
			colored = true
		}
		if m.TriColors != nil {
			triColored = true
		}
	}
	for _, m := range meshes {
		base := int32(len(out.Vertices))
		out.Vertices = append(out.Vertices, m.Vertices...)
		if colored {
			if m.Colors != nil {
				out.Colors = append(out.Colors, m.Colors...)
			} else {
				for range m.Vertices {
					out.Colors = append(out.Colors, ColorWall)
				}
			}
		}
		for t := range m.Triangles {
			tri := m.Triangles[t]
			out.Triangles = append(out.Triangles, [3]int32{tri[0] + base, tri[1] + base, tri[2] + base})
			if triColored {
				out.TriColors = append(out.TriColors, m.TriangleColor(t))
			}
		}
	}
	return out
}
