package mesh

import (
	"bytes"
	"math/rand"
	"testing"
)

// Corrupted mesh files must error, never panic or over-allocate.
func TestReadCorruptedInputs(t *testing.T) {
	m := NewTube([3]float64{0, 0, 0}, [3]float64{0, 0, 1}, 0.3, 12, ColorInflow, ColorOutflow)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("%s: Read panicked: %v", name, p)
			}
		}()
		_, _ = Read(bytes.NewReader(data))
	}
	check("empty", nil)
	check("short magic", good[:2])
	for _, cut := range []int{4, 12, 20, len(good) / 3, len(good) - 2} {
		check("truncated", good[:cut])
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		c := append([]byte(nil), good...)
		for i := 0; i < 4; i++ {
			c[r.Intn(len(c))] ^= byte(1 << r.Intn(8))
		}
		check("bitflip", c)
	}
	// A forged header with absurd counts must be rejected cheaply.
	forged := append([]byte(nil), good[:4]...)
	forged = append(forged, bytes.Repeat([]byte{0xFF}, 16)...)
	if _, err := Read(bytes.NewReader(forged)); err == nil {
		t.Error("absurd counts accepted")
	}
}

func TestReadSTLCorrupted(t *testing.T) {
	m := NewSphere([3]float64{0, 0, 0}, 1, 1)
	var buf bytes.Buffer
	if err := m.WriteSTL(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 10, 83, 84, 100, len(good) - 7} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("cut %d: panicked: %v", cut, p)
				}
			}()
			if _, err := ReadSTL(bytes.NewReader(good[:cut])); err == nil && cut < 84 {
				t.Errorf("cut %d: truncated STL accepted", cut)
			}
		}()
	}
}
