package mesh

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary STL and a colored indexed binary format ("WBM1"). STL is the
// interchange format CTA segmentations commonly export; the colored format
// preserves the vertex colors the pipeline uses to assign boundary
// conditions (STL cannot carry them).

// WriteSTL writes the mesh as binary STL (colors are lost, vertices are
// expanded per triangle as the format requires).
func (m *Mesh) WriteSTL(w io.Writer) error {
	var buf bytes.Buffer
	header := make([]byte, 80)
	copy(header, "walberla-go surface mesh")
	buf.Write(header)
	binary.Write(&buf, binary.LittleEndian, uint32(len(m.Triangles)))
	for t := range m.Triangles {
		n := m.UnitNormal(t)
		a, b, c := m.TriangleVertices(t)
		for _, v := range [][3]float64{n, a, b, c} {
			for d := 0; d < 3; d++ {
				binary.Write(&buf, binary.LittleEndian, float32(v[d]))
			}
		}
		binary.Write(&buf, binary.LittleEndian, uint16(0)) // attribute bytes
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadSTL reads a binary STL stream, deduplicating exactly coincident
// vertices to recover an indexed (and, for well-formed input, watertight)
// mesh. The result is uncolored.
func ReadSTL(r io.Reader) (*Mesh, error) {
	header := make([]byte, 80)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("mesh: reading STL header: %w", err)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("mesh: reading STL triangle count: %w", err)
	}
	m := &Mesh{}
	index := make(map[[3]float64]int32)
	lookup := func(v [3]float64) int32 {
		if i, ok := index[v]; ok {
			return i
		}
		m.Vertices = append(m.Vertices, v)
		index[v] = int32(len(m.Vertices) - 1)
		return index[v]
	}
	var rec struct {
		Normal [3]float32
		V      [3][3]float32
		Attr   uint16
	}
	for t := uint32(0); t < count; t++ {
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("mesh: reading STL triangle %d: %w", t, err)
		}
		var tri [3]int32
		for i := 0; i < 3; i++ {
			tri[i] = lookup([3]float64{
				float64(rec.V[i][0]), float64(rec.V[i][1]), float64(rec.V[i][2]),
			})
		}
		m.Triangles = append(m.Triangles, tri)
	}
	return m, nil
}

const meshMagic = "WBM1"

// Write stores the mesh in the indexed colored binary format: magic,
// vertex count, triangle count, vertices as float64 triples, one RGB byte
// triple per vertex, triangles as uint32 index triples. Little-endian by
// definition.
func (m *Mesh) Write(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(meshMagic)
	binary.Write(&buf, binary.LittleEndian, uint64(len(m.Vertices)))
	binary.Write(&buf, binary.LittleEndian, uint64(len(m.Triangles)))
	for _, v := range m.Vertices {
		for d := 0; d < 3; d++ {
			binary.Write(&buf, binary.LittleEndian, math.Float64bits(v[d]))
		}
	}
	for i := range m.Vertices {
		c := ColorWall
		if m.Colors != nil {
			c = m.Colors[i]
		}
		buf.Write([]byte{c.R, c.G, c.B})
	}
	for _, t := range m.Triangles {
		for i := 0; i < 3; i++ {
			binary.Write(&buf, binary.LittleEndian, uint32(t[i]))
		}
	}
	if m.TriColors != nil {
		buf.WriteByte(1)
		for _, c := range m.TriColors {
			buf.Write([]byte{c.R, c.G, c.B})
		}
	} else {
		buf.WriteByte(0)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Read loads a mesh written by Write.
func Read(r io.Reader) (*Mesh, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("mesh: reading magic: %w", err)
	}
	if string(magic) != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %q", magic)
	}
	var nv, nt uint64
	if err := binary.Read(r, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &nt); err != nil {
		return nil, err
	}
	// Guard allocations against corrupted counts; meshes beyond this are
	// outside anything the pipeline produces.
	const maxElements = 1 << 28
	if nv > maxElements || nt > maxElements {
		return nil, fmt.Errorf("mesh: implausible counts: %d vertices, %d triangles", nv, nt)
	}
	m := &Mesh{
		Vertices:  make([][3]float64, nv),
		Colors:    make([]Color, nv),
		Triangles: make([][3]int32, nt),
	}
	for i := range m.Vertices {
		for d := 0; d < 3; d++ {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return nil, err
			}
			m.Vertices[i][d] = math.Float64frombits(bits)
		}
	}
	rgb := make([]byte, 3)
	for i := range m.Colors {
		if _, err := io.ReadFull(r, rgb); err != nil {
			return nil, err
		}
		m.Colors[i] = Color{rgb[0], rgb[1], rgb[2]}
	}
	for i := range m.Triangles {
		for d := 0; d < 3; d++ {
			var v uint32
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			m.Triangles[i][d] = int32(v)
		}
	}
	var hasTriColors [1]byte
	if _, err := io.ReadFull(r, hasTriColors[:]); err != nil {
		return nil, err
	}
	if hasTriColors[0] == 1 {
		m.TriColors = make([]Color, nt)
		for i := range m.TriColors {
			if _, err := io.ReadFull(r, rgb); err != nil {
				return nil, err
			}
			m.TriColors[i] = Color{rgb[0], rgb[1], rgb[2]}
		}
	}
	return m, m.Validate()
}
