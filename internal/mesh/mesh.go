// Package mesh provides triangle surface meshes with per-vertex colors,
// the geometry input format of the paper's complex-geometry pipeline: the
// domain boundary Gamma is given as a triangle surface mesh S whose vertex
// colors encode boundary conditions (unambiguously colored inflow and
// outflow surfaces).
package mesh

import (
	"fmt"
	"math"

	"walberla/internal/blockforest"
)

// Color is an RGB vertex color used to tag boundary surfaces.
type Color struct {
	R, G, B uint8
}

// Predefined surface colors used by the setup pipeline.
var (
	// ColorWall marks no-slip wall surfaces.
	ColorWall = Color{128, 128, 128}
	// ColorInflow marks velocity inflow surfaces.
	ColorInflow = Color{255, 0, 0}
	// ColorOutflow marks pressure outflow surfaces.
	ColorOutflow = Color{0, 0, 255}
)

// Mesh is an indexed triangle surface mesh. Vertices may carry colors; a
// nil Colors slice means the mesh is uncolored (all-wall). TriColors, if
// present, assigns colors per triangle and takes precedence over the
// vertex-majority vote — primitives use it to color surfaces whose
// boundary vertices are shared with differently colored neighbors (e.g.
// the inflow cap of a tube sharing its rim with the wall).
type Mesh struct {
	Vertices  [][3]float64
	Colors    []Color // len == len(Vertices) or nil
	Triangles [][3]int32
	TriColors []Color // len == len(Triangles) or nil
}

// VertexCount returns the number of vertices.
func (m *Mesh) VertexCount() int { return len(m.Vertices) }

// TriangleCount returns the number of triangles.
func (m *Mesh) TriangleCount() int { return len(m.Triangles) }

// Bounds returns the axis-aligned bounding box of the mesh.
func (m *Mesh) Bounds() blockforest.AABB {
	if len(m.Vertices) == 0 {
		return blockforest.AABB{}
	}
	b := blockforest.AABB{Min: m.Vertices[0], Max: m.Vertices[0]}
	for _, v := range m.Vertices[1:] {
		for i := 0; i < 3; i++ {
			if v[i] < b.Min[i] {
				b.Min[i] = v[i]
			}
			if v[i] > b.Max[i] {
				b.Max[i] = v[i]
			}
		}
	}
	return b
}

// TriangleVertices returns the three corner points of triangle t.
func (m *Mesh) TriangleVertices(t int) (a, b, c [3]float64) {
	tri := m.Triangles[t]
	return m.Vertices[tri[0]], m.Vertices[tri[1]], m.Vertices[tri[2]]
}

// Normal returns the (unnormalized) face normal of triangle t; its length
// is twice the triangle area.
func (m *Mesh) Normal(t int) [3]float64 {
	a, b, c := m.TriangleVertices(t)
	return Cross(Sub(b, a), Sub(c, a))
}

// UnitNormal returns the normalized face normal of triangle t. Degenerate
// triangles yield a zero vector.
func (m *Mesh) UnitNormal(t int) [3]float64 {
	n := m.Normal(t)
	l := Norm(n)
	if l == 0 {
		return n
	}
	return Scale(n, 1/l)
}

// Area returns the area of triangle t.
func (m *Mesh) Area(t int) float64 { return 0.5 * Norm(m.Normal(t)) }

// TotalArea returns the surface area of the mesh.
func (m *Mesh) TotalArea() float64 {
	var a float64
	for t := range m.Triangles {
		a += m.Area(t)
	}
	return a
}

// TriangleColor returns the color of triangle t: the explicit per-triangle
// color if present, else the dominant vertex color (the color shared by at
// least two of its vertices, else the first vertex's color). An uncolored
// mesh returns ColorWall.
func (m *Mesh) TriangleColor(t int) Color {
	if m.TriColors != nil {
		return m.TriColors[t]
	}
	if m.Colors == nil {
		return ColorWall
	}
	tri := m.Triangles[t]
	c0, c1, c2 := m.Colors[tri[0]], m.Colors[tri[1]], m.Colors[tri[2]]
	if c1 == c2 {
		return c1
	}
	return c0
}

// edgeKey is a canonical (sorted) vertex index pair.
type edgeKey struct{ a, b int32 }

func makeEdge(a, b int32) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// EdgeTriangles maps every edge to the indices of its adjacent triangles.
func (m *Mesh) EdgeTriangles() map[[2]int32][]int {
	out := make(map[[2]int32][]int, 3*len(m.Triangles)/2)
	for t, tri := range m.Triangles {
		for e := 0; e < 3; e++ {
			k := makeEdge(tri[e], tri[(e+1)%3])
			out[[2]int32{k.a, k.b}] = append(out[[2]int32{k.a, k.b}], t)
		}
	}
	return out
}

// CheckWatertight verifies that every edge is shared by exactly two
// triangles — the condition for the signed distance function to be
// well-defined everywhere.
func (m *Mesh) CheckWatertight() error {
	for e, ts := range m.EdgeTriangles() {
		if len(ts) != 2 {
			return fmt.Errorf("mesh: edge (%d,%d) shared by %d triangles, want 2", e[0], e[1], len(ts))
		}
	}
	return nil
}

// Validate checks index ranges and color table length.
func (m *Mesh) Validate() error {
	n := int32(len(m.Vertices))
	for t, tri := range m.Triangles {
		for _, v := range tri {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: triangle %d references vertex %d of %d", t, v, n)
			}
		}
		if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
			return fmt.Errorf("mesh: triangle %d is degenerate (%v)", t, tri)
		}
	}
	if m.Colors != nil && len(m.Colors) != len(m.Vertices) {
		return fmt.Errorf("mesh: %d colors for %d vertices", len(m.Colors), len(m.Vertices))
	}
	if m.TriColors != nil && len(m.TriColors) != len(m.Triangles) {
		return fmt.Errorf("mesh: %d triangle colors for %d triangles", len(m.TriColors), len(m.Triangles))
	}
	return nil
}

// Transform applies an affine map p -> scale*p + offset in place.
func (m *Mesh) Transform(scale float64, offset [3]float64) {
	for i := range m.Vertices {
		for d := 0; d < 3; d++ {
			m.Vertices[i][d] = scale*m.Vertices[i][d] + offset[d]
		}
	}
}

// Vector helpers shared by the geometry packages.

// Sub returns a - b.
func Sub(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
}

// Add returns a + b.
func Add(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
}

// Scale returns s*a.
func Scale(a [3]float64, s float64) [3]float64 {
	return [3]float64{s * a[0], s * a[1], s * a[2]}
}

// Dot returns the inner product.
func Dot(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Cross returns the cross product a x b.
func Cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// Norm returns the Euclidean length.
func Norm(a [3]float64) float64 { return math.Sqrt(Dot(a, a)) }

// Normalize returns a/|a|; the zero vector is returned unchanged.
func Normalize(a [3]float64) [3]float64 {
	l := Norm(a)
	if l == 0 {
		return a
	}
	return Scale(a, 1/l)
}
