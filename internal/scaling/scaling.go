// Package scaling projects the petascale experiments of section 4 onto
// the machine and network models: dense weak scaling (Figure 6), weak
// scaling on the sparse vascular geometry (Figure 7), and strong scaling
// at fixed resolution (Figure 8). The projections combine the node-level
// ECM/roofline rates from perfmodel with the interconnect models from
// netmodel; two calibration constants per platform (a sustained-efficiency
// factor covering boundary sweeps and ghost-layer pack/unpack traffic, and
// a per-block framework overhead) are fixed against the paper's published
// operating points and documented in EXPERIMENTS.md.
package scaling

import (
	"fmt"
	"math"

	"walberla/internal/netmodel"
	"walberla/internal/perfmodel"
)

// Platform couples a machine model with its interconnect and the
// calibration constants of the sustained full-application performance.
type Platform struct {
	Machine *perfmodel.Machine
	Network netmodel.Network
	// SustainedOverhead inflates the pure-kernel compute time to the
	// sustained full-application rate (boundary handling, pack/unpack
	// memory traffic, framework bookkeeping). SuperMUC: 1.45 (16 small
	// processes per node touch many slabs), JUQUEEN: 1.05.
	SustainedOverhead float64
	// BlockOverhead is the per-block per-step framework cost in seconds,
	// dominating strong scaling at tiny block sizes. The paper observes
	// SuperMUC's faster cores cope better with this overhead.
	BlockOverhead float64
	// SmallBlockEfficiency is the sustained kernel efficiency on the
	// coarse, fragmented vascular partitionings of the strong scaling
	// study (short per-line fluid intervals, many boundary links); the
	// weak in-order BG/Q cores suffer far more than the Intel cores.
	// Calibrated against the paper's single-node/nodeboard baselines
	// (11.4 steps/s, 0.51 MFLUPS/core).
	SmallBlockEfficiency float64
}

// SuperMUC returns the SuperMUC platform model.
func SuperMUC() Platform {
	return Platform{
		Machine:              perfmodel.SuperMUCSocket(),
		Network:              netmodel.SuperMUCNetwork(),
		SustainedOverhead:    1.45,
		BlockOverhead:        18e-6,
		SmallBlockEfficiency: 0.75,
	}
}

// JUQUEEN returns the JUQUEEN platform model.
func JUQUEEN() Platform {
	return Platform{
		Machine:              perfmodel.JUQUEENNode(),
		Network:              netmodel.JUQUEENTorus(),
		SustainedOverhead:    1.05,
		BlockOverhead:        110e-6,
		SmallBlockEfficiency: 0.35,
	}
}

// NodeConfig is an "aPbT" hybrid configuration: a MPI processes per node,
// b threads per process.
type NodeConfig struct {
	Processes int
	Threads   int
}

func (c NodeConfig) String() string { return fmt.Sprintf("%dP%dT", c.Processes, c.Threads) }

// smtWays returns the hardware threads per core the configuration drives.
func (c NodeConfig) smtWays(coresPerNode int) int {
	w := c.Processes * c.Threads / coresPerNode
	if w < 1 {
		w = 1
	}
	return w
}

// threadEfficiency models the small OpenMP overhead of hybrid processes.
func (c NodeConfig) threadEfficiency() float64 {
	return 1.0 - 0.012*math.Log2(float64(c.Threads))
}

// nodeRateLUPS returns the sustained dense lattice updates per second of
// one node under the configuration.
func (p Platform) nodeRateLUPS(cfg NodeConfig) float64 {
	m := p.Machine
	smt := cfg.smtWays(m.CoresPerNode)
	socketMLUPS := perfmodel.KernelMLUPS(m, perfmodel.KernelSIMD, perfmodel.CollisionTRT, m.Cores, smt)
	nodeMLUPS := socketMLUPS * float64(m.CoresPerNode) / float64(m.Cores)
	return nodeMLUPS * 1e6 * cfg.threadEfficiency() / p.SustainedOverhead
}

// bytesPerFaceCell is the ghost data of one boundary cell: five PDFs of
// eight bytes (the reduced per-face communication volume).
const bytesPerFaceCell = 5 * 8

// commVolumes estimates, for one node holding cellsNode lattice cells
// split into cfg.Processes process domains, the off-node and intra-node
// ghost exchange volumes and the off-node message count per step.
func commVolumes(cellsNode float64, cfg NodeConfig) (offBytes, intraBytes float64, offMsgs int) {
	nodeSide := math.Cbrt(cellsNode)
	procSide := math.Cbrt(cellsNode / float64(cfg.Processes))
	offBytes = 6 * nodeSide * nodeSide * bytesPerFaceCell
	totalBytes := float64(cfg.Processes) * 6 * procSide * procSide * bytesPerFaceCell
	intraBytes = totalBytes - offBytes
	if intraBytes < 0 {
		intraBytes = 0
	}
	// Process faces tiling the node surface; edges roughly double the
	// message count at negligible volume.
	facesOnSurface := 6 * math.Pow(float64(cfg.Processes), 2.0/3.0)
	offMsgs = int(2 * facesOnSurface)
	if offMsgs < 6 {
		offMsgs = 6
	}
	return offBytes, intraBytes, offMsgs
}

// WeakPoint is one data point of a weak scaling series.
type WeakPoint struct {
	Cores         int
	MLUPSPerCore  float64
	TotalMLUPS    float64
	CommFraction  float64
	FluidFraction float64
	StepTime      float64
}

// DenseWeakScaling projects the dense weak scaling of Figure 6: constant
// cells per core, MLUPS per core and communication-time fraction versus
// core count.
func DenseWeakScaling(p Platform, cfg NodeConfig, cellsPerCore float64, coreCounts []int) []WeakPoint {
	m := p.Machine
	cellsNode := cellsPerCore * float64(m.CoresPerNode)
	rate := p.nodeRateLUPS(cfg)
	tComp := cellsNode / rate
	off, intra, msgs := commVolumes(cellsNode, cfg)
	out := make([]WeakPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		tComm := p.Network.CommTime(cores, off, intra, msgs)
		tStep := tComp + tComm
		perCore := cellsPerCore / tStep / 1e6
		out = append(out, WeakPoint{
			Cores:         cores,
			MLUPSPerCore:  perCore,
			TotalMLUPS:    perCore * float64(cores),
			CommFraction:  tComm / tStep,
			FluidFraction: 1,
			StepTime:      tStep,
		})
	}
	return out
}

// VascularWeakScaling projects the sparse-geometry weak scaling of Figure
// 7: one block per process with fixed block size; the fluid fraction of
// the domain partitioning (supplied by ffAt, measured on the synthetic
// coronary tree) grows with the block count, and with it the MFLUPS per
// core. Communication stays dense (the exchange is unaware of fluid
// cells).
func VascularWeakScaling(p Platform, cfg NodeConfig, blockCells float64, ffAt func(blocks int) float64, coreCounts []int) []WeakPoint {
	m := p.Machine
	// One block per process: cells per core derive from processes/node.
	cellsPerCore := blockCells * float64(cfg.Processes) / float64(m.CoresPerNode)
	cellsNode := cellsPerCore * float64(m.CoresPerNode)
	denseRate := p.nodeRateLUPS(cfg)
	off, intra, msgs := commVolumes(cellsNode, cfg)
	const skipCost = 0.25
	out := make([]WeakPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		blocks := cores / m.CoresPerNode * cfg.Processes
		if blocks < 1 {
			blocks = 1
		}
		ff := ffAt(blocks)
		// Sparse kernel: fluid cells cost a full update, skipped cells a
		// fraction (prefetcher, interval bookkeeping).
		work := cellsNode * (ff + skipCost*(1-ff))
		tComp := work / denseRate
		tComm := p.Network.CommTime(cores, off, intra, msgs)
		tStep := tComp + tComm
		perCoreFluid := cellsPerCore * ff / tStep / 1e6
		out = append(out, WeakPoint{
			Cores:         cores,
			MLUPSPerCore:  perCoreFluid, // MFLUPS per core for sparse runs
			TotalMLUPS:    perCoreFluid * float64(cores),
			CommFraction:  tComm / tStep,
			FluidFraction: ff,
			StepTime:      tStep,
		})
	}
	return out
}

// StrongPoint is one data point of a strong scaling series.
type StrongPoint struct {
	Cores         int
	MFLUPSPerCore float64
	TimeStepsPerS float64
	BlocksPerCore float64
	BlockEdge     float64
	CommFraction  float64
}

// StrongScalingConfig describes one strong scaling experiment of Figure 8.
type StrongScalingConfig struct {
	// FluidCells is the total number of fluid cells of the fixed problem
	// (2.1e6 at 0.1 mm, 16.9e6 at 0.05 mm).
	FluidCells float64
	// BaseBlocksPerCore is the optimal blocks-per-core at the smallest
	// core count (the paper: 32 at 16 cores for 0.1 mm, 64 for 0.05 mm).
	BaseBlocksPerCore float64
	// BaseCores is the smallest core count of the series.
	BaseCores int
	// BaseEdge is the cubic block edge length at BaseCores (the paper:
	// 34 at 0.1 mm, 46 at 0.05 mm).
	BaseEdge float64
	// EdgeExponent controls how fast the searched block edge shrinks with
	// core count; the paper's endpoints (34^3 at 16 cores to 9^3 at
	// 32768) give ~0.174.
	EdgeExponent float64
	// MinEdge bounds the shrink (the paper's searches stop at 9^3-13^3).
	MinEdge float64
}

// StrongScaling projects Figure 8: fixed total problem, growing core
// count; the domain partitioning follows the paper's searched trajectory
// of blocks-per-core and block edge length, from which the allocation per
// core and its fluid fraction follow. Small blocks lose efficiency to
// ghost layers, fragmentation and per-block framework overhead; messages
// gain weight; steps/s rise sublinearly (SuperMUC) or efficiency declines
// from the start (JUQUEEN).
func StrongScaling(p Platform, cfg NodeConfig, sc StrongScalingConfig, coreCounts []int) []StrongPoint {
	m := p.Machine
	denseRate := p.nodeRateLUPS(cfg) / float64(m.CoresPerNode) // per core
	const skipCost = 0.25
	if sc.EdgeExponent == 0 {
		sc.EdgeExponent = 0.174
	}
	if sc.MinEdge == 0 {
		sc.MinEdge = 9
	}
	out := make([]StrongPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		ratio := float64(sc.BaseCores) / float64(cores)
		// Optimal blocks per core declines with scale (the paper: 32 -> 1).
		bpc := sc.BaseBlocksPerCore * math.Pow(ratio, 0.625)
		if bpc < 1 {
			bpc = 1
		}
		edge := sc.BaseEdge * math.Pow(ratio, sc.EdgeExponent)
		if edge < sc.MinEdge {
			edge = sc.MinEdge
		}
		allocPerCore := bpc * edge * edge * edge
		ff := sc.FluidCells / float64(cores) / allocPerCore
		if ff > 0.95 {
			ff = 0.95
		}
		// Small blocks spend a growing share of their footprint on ghost
		// layers; fragmented tubular geometry costs the platform-specific
		// sustained efficiency.
		ghost := math.Pow(edge/(edge+2), 3)
		rate := denseRate * p.SmallBlockEfficiency * ghost
		work := allocPerCore * (ff + skipCost*(1-ff))
		tComp := work/rate + bpc*p.BlockOverhead
		// Ghost exchange per core: every block exchanges its six faces
		// (dense slabs) plus edges; latency per block neighborhood.
		bytes := bpc * 6 * edge * edge * bytesPerFaceCell
		msgs := int(bpc * 18)
		tComm := p.Network.CommTime(cores, bytes, bytes/2, msgs)
		tStep := tComp + tComm
		out = append(out, StrongPoint{
			Cores:         cores,
			MFLUPSPerCore: sc.FluidCells / float64(cores) / tStep / 1e6,
			TimeStepsPerS: 1 / tStep,
			BlocksPerCore: bpc,
			BlockEdge:     edge,
			CommFraction:  tComm / tStep,
		})
	}
	return out
}
