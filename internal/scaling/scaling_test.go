package scaling

import (
	"math"
	"testing"
)

func pow2Range(lo, hi int) []int {
	var out []int
	for c := lo; c <= hi; c *= 2 {
		out = append(out, c)
	}
	return out
}

// Figure 6a shape: SuperMUC weak scaling is stable within one island and
// declines beyond it, with the communication fraction rising; the largest
// run sustains roughly the paper's 837 GLUPS on 2^17 cores.
func TestSuperMUCDenseWeakScaling(t *testing.T) {
	p := SuperMUC()
	cfg := NodeConfig{Processes: 16, Threads: 1}
	pts := DenseWeakScaling(p, cfg, 3.43e6, pow2Range(32, 131072))
	first := pts[0]
	last := pts[len(pts)-1]
	if first.MLUPSPerCore < 6.0 || first.MLUPSPerCore > 9.0 {
		t.Errorf("small-scale rate %v MLUPS/core, want ~7", first.MLUPSPerCore)
	}
	// Flat within the island.
	for _, pt := range pts {
		if pt.Cores <= 8192 && math.Abs(pt.MLUPSPerCore-first.MLUPSPerCore) > 1e-9 {
			t.Errorf("%d cores: rate %v differs within island", pt.Cores, pt.MLUPSPerCore)
		}
	}
	// Declining beyond; comm fraction rising.
	if !(last.MLUPSPerCore < first.MLUPSPerCore) {
		t.Error("no efficiency decline across islands")
	}
	if !(last.CommFraction > first.CommFraction) {
		t.Error("comm fraction does not rise across islands")
	}
	// Paper: 837e3 MLUPS at 2^17 cores; accept the right magnitude.
	if last.TotalMLUPS < 650e3 || last.TotalMLUPS > 1050e3 {
		t.Errorf("2^17-core total = %v MLUPS, want ~837e3", last.TotalMLUPS)
	}
	eff := last.MLUPSPerCore / first.MLUPSPerCore
	if eff < 0.70 || eff > 0.95 {
		t.Errorf("parallel efficiency at 2^17 = %v, want a clear but bounded decline", eff)
	}
}

// Figure 6b shape: JUQUEEN stays nearly flat to the full machine at 92 %
// parallel efficiency and ~1.9 TLUPS.
func TestJUQUEENDenseWeakScaling(t *testing.T) {
	p := JUQUEEN()
	cfg := NodeConfig{Processes: 64, Threads: 1}
	pts := DenseWeakScaling(p, cfg, 1.728e6, pow2Range(32, 524288))
	first := pts[0]
	// Full machine point: 458752 cores is not a power of two; use the
	// projection directly.
	full := DenseWeakScaling(p, cfg, 1.728e6, []int{458752})[0]
	eff := full.MLUPSPerCore / first.MLUPSPerCore
	if eff < 0.88 || eff > 0.99 {
		t.Errorf("full-machine efficiency %v, want ~0.92", eff)
	}
	if full.TotalMLUPS < 1.5e6 || full.TotalMLUPS > 2.3e6 {
		t.Errorf("full-machine total = %v MLUPS, want ~1.93e6", full.TotalMLUPS)
	}
	// Comm fraction stays modest and stable (no island knee).
	for _, pt := range pts {
		if pt.CommFraction > 0.25 {
			t.Errorf("%d cores: comm fraction %v implausibly high for a torus", pt.Cores, pt.CommFraction)
		}
	}
}

// Hybrid configurations communicate less: at the largest scale the hybrid
// variants must not be slower than pure MPI (the paper's motivation for
// MPI/OpenMP on JUQUEEN).
func TestHybridConfigurations(t *testing.T) {
	p := JUQUEEN()
	pure := DenseWeakScaling(p, NodeConfig{64, 1}, 1.728e6, []int{458752})[0]
	hybrid := DenseWeakScaling(p, NodeConfig{16, 4}, 1.728e6, []int{458752})[0]
	if hybrid.CommFraction >= pure.CommFraction {
		t.Errorf("hybrid comm fraction %v not below pure MPI %v", hybrid.CommFraction, pure.CommFraction)
	}
	// At small scale pure MPI is at least as fast (no thread overhead).
	pureS := DenseWeakScaling(p, NodeConfig{64, 1}, 1.728e6, []int{1024})[0]
	hybridS := DenseWeakScaling(p, NodeConfig{16, 4}, 1.728e6, []int{1024})[0]
	if hybridS.MLUPSPerCore > pureS.MLUPSPerCore {
		t.Errorf("hybrid %v beats pure MPI %v at small scale", hybridS.MLUPSPerCore, pureS.MLUPSPerCore)
	}
}

// Figure 7 shape: on the sparse geometry the per-core MFLUPS *rises* with
// the core count because more blocks fit the geometry better (higher
// fluid fraction).
func TestVascularWeakScalingRisingEfficiency(t *testing.T) {
	p := JUQUEEN()
	cfg := NodeConfig{Processes: 16, Threads: 4}
	// Fluid fraction rising with block count, as measured on the tree.
	ffAt := func(blocks int) float64 {
		ff := 0.18 * math.Pow(float64(blocks)/512.0, 0.18)
		return math.Min(ff, 0.85)
	}
	pts := VascularWeakScaling(p, cfg, 80*80*80, ffAt, pow2Range(512, 458752/2))
	for i := 1; i < len(pts); i++ {
		if pts[i].MLUPSPerCore <= pts[i-1].MLUPSPerCore {
			t.Errorf("MFLUPS/core not rising at %d cores: %v -> %v",
				pts[i].Cores, pts[i-1].MLUPSPerCore, pts[i].MLUPSPerCore)
		}
		if pts[i].FluidFraction <= pts[i-1].FluidFraction {
			t.Errorf("fluid fraction not rising at %d cores", pts[i].Cores)
		}
	}
	// MFLUPS/core stays below the dense rate.
	dense := DenseWeakScaling(p, cfg, 80*80*80*16/64.0, []int{458752 / 2})[0]
	lastSparse := pts[len(pts)-1]
	if lastSparse.MLUPSPerCore >= dense.MLUPSPerCore {
		t.Errorf("sparse rate %v exceeds dense %v", lastSparse.MLUPSPerCore, dense.MLUPSPerCore)
	}
}

// On SuperMUC the island knee must also appear in the vascular weak
// scaling (the paper sees the same large-scale drop as in Figure 6a).
func TestVascularWeakScalingSuperMUCKnee(t *testing.T) {
	p := SuperMUC()
	cfg := NodeConfig{Processes: 4, Threads: 4}
	ffAt := func(blocks int) float64 { return 0.5 } // isolate the network effect
	pts := VascularWeakScaling(p, cfg, 170*170*170, ffAt, []int{4096, 131072})
	if pts[1].MLUPSPerCore >= pts[0].MLUPSPerCore {
		t.Errorf("no decline across islands: %v -> %v", pts[0].MLUPSPerCore, pts[1].MLUPSPerCore)
	}
}

// Figure 8 shapes. SuperMUC at 0.1 mm: time steps/s rise monotonically to
// thousands at 32k cores (the paper: 11.4 at one node to 6638 at 2048
// nodes) while MFLUPS/core eventually declines.
func TestStrongScalingSuperMUC(t *testing.T) {
	p := SuperMUC()
	cfg := NodeConfig{Processes: 4, Threads: 4}
	sc := StrongScalingConfig{
		FluidCells:        2.1e6,
		BaseBlocksPerCore: 32,
		BaseCores:         16,
		BaseEdge:          34,
	}
	pts := StrongScaling(p, cfg, sc, pow2Range(16, 32768))
	first, last := pts[0], pts[len(pts)-1]
	if first.TimeStepsPerS < 5 || first.TimeStepsPerS > 40 {
		t.Errorf("single-node rate %v steps/s, want ~11", first.TimeStepsPerS)
	}
	// Steps/s grow by orders of magnitude.
	if last.TimeStepsPerS < 100*first.TimeStepsPerS {
		t.Errorf("steps/s grew only %v -> %v", first.TimeStepsPerS, last.TimeStepsPerS)
	}
	if last.TimeStepsPerS < 2000 || last.TimeStepsPerS > 15000 {
		t.Errorf("32k-core rate %v steps/s, want thousands (paper: 6638)", last.TimeStepsPerS)
	}
	// Efficiency declines at scale.
	if last.MFLUPSPerCore >= first.MFLUPSPerCore {
		t.Error("no strong scaling efficiency decline")
	}
	// Block edges shrink into the paper's range (34^3 down to ~9^3).
	if first.BlockEdge < 20 || first.BlockEdge > 50 {
		t.Errorf("base block edge %v, want ~34", first.BlockEdge)
	}
	if last.BlockEdge > 16 {
		t.Errorf("final block edge %v, want ~9", last.BlockEdge)
	}
}

// JUQUEEN strong scaling: efficiency declines continuously from the
// smallest partition (the framework overhead is heavier on the weak
// cores), yet steps/s keep rising to large core counts.
func TestStrongScalingJUQUEEN(t *testing.T) {
	p := JUQUEEN()
	cfg := NodeConfig{Processes: 16, Threads: 4}
	// Same partitioning trajectory as on SuperMUC (anchored at 16 cores),
	// evaluated over JUQUEEN's core range.
	sc := StrongScalingConfig{
		FluidCells:        2.1e6,
		BaseBlocksPerCore: 32,
		BaseCores:         16,
		BaseEdge:          34,
	}
	pts := StrongScaling(p, cfg, sc, pow2Range(512, 65536))
	for i := 1; i < len(pts); i++ {
		// Essentially monotone decline (1 % tolerance for the searched
		// block-size trajectory).
		if pts[i].MFLUPSPerCore > 1.01*pts[i-1].MFLUPSPerCore {
			t.Errorf("JUQUEEN efficiency not declining at %d cores", pts[i].Cores)
		}
	}
	if last, first := pts[len(pts)-1], pts[0]; last.MFLUPSPerCore > 0.5*first.MFLUPSPerCore {
		t.Errorf("JUQUEEN efficiency decline too weak: %v -> %v", first.MFLUPSPerCore, last.MFLUPSPerCore)
	}
	if pts[len(pts)-1].TimeStepsPerS <= pts[0].TimeStepsPerS {
		t.Error("steps/s did not rise with cores")
	}
	// SuperMUC handles small blocks better: at matched large scale its
	// per-core efficiency loss from block overhead is smaller.
	pm := SuperMUC()
	smPts := StrongScaling(pm, NodeConfig{Processes: 4, Threads: 4}, sc, []int{65536})
	jqPts := StrongScaling(p, cfg, sc, []int{65536})
	smOverheadShare := smPts[0].BlocksPerCore * pm.BlockOverhead
	jqOverheadShare := jqPts[0].BlocksPerCore * p.BlockOverhead
	if smOverheadShare >= jqOverheadShare {
		t.Error("SuperMUC per-block overhead should be below JUQUEEN's")
	}
}

func TestNodeConfigString(t *testing.T) {
	if (NodeConfig{16, 4}).String() != "16P4T" {
		t.Errorf("String = %q", NodeConfig{16, 4}.String())
	}
}

func TestCommVolumes(t *testing.T) {
	off, intra, msgs := commVolumes(64*64*64, NodeConfig{Processes: 8, Threads: 2})
	// Node surface: 6*64^2 cells * 40 B.
	if math.Abs(off-6*64*64*40) > 1e-9 {
		t.Errorf("offBytes = %v", off)
	}
	// 8 processes of 32^3: total surface 8*6*32^2*40; intra = total - off.
	want := 8*6*32*32*40.0 - off
	if math.Abs(intra-want) > 1e-9 {
		t.Errorf("intraBytes = %v, want %v", intra, want)
	}
	if msgs < 6 {
		t.Errorf("msgs = %d", msgs)
	}
	// One process per node: everything off-node, nothing intra-node.
	_, intra1, _ := commVolumes(64*64*64, NodeConfig{Processes: 1, Threads: 16})
	if intra1 != 0 {
		t.Errorf("single process intra bytes = %v", intra1)
	}
}
