// Package analysis provides in-situ measurement tools for running
// simulations: point probes recording time series of the macroscopic
// fields, volumetric fluxes through axis-aligned planes (e.g. through a
// vessel cross-section), and a steady-state residual monitor — the
// quantities a production flow solver reports while it runs.
package analysis

import (
	"fmt"
	"math"

	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/sim"
)

// Probe records a time series of density and velocity at one global
// lattice cell. Sampling is collective: every rank calls Sample, the
// owner measures, and the value is broadcast so all ranks hold the same
// series.
type Probe struct {
	Coord [3]int // global cell coordinate
	Steps []int
	Rho   []float64
	Ux    []float64
	Uy    []float64
	Uz    []float64
}

// NewProbe creates a probe at a global cell coordinate.
func NewProbe(coord [3]int) *Probe { return &Probe{Coord: coord} }

// locate finds the block and local coordinates of a global cell on this
// rank, if owned.
func locate(s *sim.Simulation, coord [3]int) (*sim.BlockData, [3]int, bool) {
	for _, bd := range s.Blocks {
		c := bd.Block.Cells
		base := [3]int{bd.Block.Coord[0] * c[0], bd.Block.Coord[1] * c[1], bd.Block.Coord[2] * c[2]}
		lx, ly, lz := coord[0]-base[0], coord[1]-base[1], coord[2]-base[2]
		if lx >= 0 && lx < c[0] && ly >= 0 && ly < c[1] && lz >= 0 && lz < c[2] {
			return bd, [3]int{lx, ly, lz}, true
		}
	}
	return nil, [3]int{}, false
}

// Sample measures the probe location at the given step. Collective.
func (p *Probe) Sample(c *comm.Comm, s *sim.Simulation, step int) {
	var local [5]float64 // owned flag, rho, ux, uy, uz
	if bd, l, ok := locate(s, p.Coord); ok {
		rho, ux, uy, uz := bd.Src.Moments(l[0], l[1], l[2])
		local = [5]float64{1, rho, ux, uy, uz}
	}
	// Owner wins: exactly one rank holds the cell (sum works since the
	// non-owners contribute zeros; the flag guards against no owner).
	owned := c.AllreduceFloat64(local[0], comm.Sum[float64])
	if owned == 0 {
		// Outside the domain: record NaNs to keep the series aligned.
		p.append(step, math.NaN(), math.NaN(), math.NaN(), math.NaN())
		return
	}
	rho := c.AllreduceFloat64(local[1], comm.Sum[float64])
	ux := c.AllreduceFloat64(local[2], comm.Sum[float64])
	uy := c.AllreduceFloat64(local[3], comm.Sum[float64])
	uz := c.AllreduceFloat64(local[4], comm.Sum[float64])
	p.append(step, rho, ux, uy, uz)
}

func (p *Probe) append(step int, rho, ux, uy, uz float64) {
	p.Steps = append(p.Steps, step)
	p.Rho = append(p.Rho, rho)
	p.Ux = append(p.Ux, ux)
	p.Uy = append(p.Uy, uy)
	p.Uz = append(p.Uz, uz)
}

// Len returns the number of recorded samples.
func (p *Probe) Len() int { return len(p.Steps) }

// Axis selects a coordinate axis.
type Axis int

// Coordinate axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// PlaneFlux computes the volumetric flux (sum of the axis-normal velocity
// component over fluid cells, in cells^3 per step) through the global
// plane at the given index along the axis. Collective.
func PlaneFlux(c *comm.Comm, s *sim.Simulation, axis Axis, index int) float64 {
	var local float64
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		base := [3]int{
			bd.Block.Coord[0] * cells[0],
			bd.Block.Coord[1] * cells[1],
			bd.Block.Coord[2] * cells[2],
		}
		lo := index - base[axis]
		if lo < 0 || lo >= cells[axis] {
			continue
		}
		// Iterate the in-plane coordinates of this block.
		dims := [3]int{cells[0], cells[1], cells[2]}
		dims[axis] = 1
		for k := 0; k < dims[2]; k++ {
			for j := 0; j < dims[1]; j++ {
				for i := 0; i < dims[0]; i++ {
					var l [3]int
					l[0], l[1], l[2] = i, j, k
					l[axis] = lo
					if bd.Flags.Get(l[0], l[1], l[2]) != field.Fluid {
						continue
					}
					_, ux, uy, uz := bd.Src.Moments(l[0], l[1], l[2])
					switch axis {
					case AxisX:
						local += ux
					case AxisY:
						local += uy
					case AxisZ:
						local += uz
					}
				}
			}
		}
	}
	return c.AllreduceFloat64(local, comm.Sum[float64])
}

// LineProfile extracts the velocity component `component` along a full
// grid line in direction `along`, at the fixed transverse coordinates
// given by fix (the coordinate along the line in fix is ignored).
// Non-fluid cells record NaN. Collective; every rank receives the full
// profile.
func LineProfile(c *comm.Comm, s *sim.Simulation, along Axis, fix [3]int, component Axis) []float64 {
	length := s.Forest.GridSize[along] * s.Forest.CellsPerBlock[along]
	local := make([]float64, length)
	owned := make([]float64, length)
	for i := range local {
		local[i] = 0
	}
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		base := [3]int{
			bd.Block.Coord[0] * cells[0],
			bd.Block.Coord[1] * cells[1],
			bd.Block.Coord[2] * cells[2],
		}
		// Does the line pass through this block?
		hit := true
		for d := 0; d < 3; d++ {
			if Axis(d) == along {
				continue
			}
			if fix[d] < base[d] || fix[d] >= base[d]+cells[d] {
				hit = false
			}
		}
		if !hit {
			continue
		}
		for i := 0; i < cells[along]; i++ {
			var l [3]int
			for d := 0; d < 3; d++ {
				l[d] = fix[d] - base[d]
			}
			l[along] = i
			g := base[along] + i
			owned[g] = 1
			if bd.Flags.Get(l[0], l[1], l[2]) != field.Fluid {
				local[g] = math.NaN()
				continue
			}
			_, ux, uy, uz := bd.Src.Moments(l[0], l[1], l[2])
			switch component {
			case AxisX:
				local[g] = ux
			case AxisY:
				local[g] = uy
			default:
				local[g] = uz
			}
		}
	}
	// Combine: exactly one rank owns each line cell; sum assembles the
	// profile (NaN propagates through the sum only for owned cells).
	out := make([]float64, length)
	for g := 0; g < length; g++ {
		v := c.AllreduceFloat64(nanToZero(local[g]), comm.Sum[float64])
		own := c.AllreduceFloat64(owned[g], comm.Sum[float64])
		nan := c.AllreduceFloat64(boolToFloat(math.IsNaN(local[g])), comm.Sum[float64])
		switch {
		case own == 0 || nan > 0:
			out[g] = math.NaN()
		default:
			out[g] = v
		}
	}
	return out
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Residual monitors convergence toward steady state: the relative L2
// change of the velocity field between successive calls.
type Residual struct {
	prev map[[3]int][3]float64
}

// NewResidual creates an empty monitor; the first Update returns +Inf.
func NewResidual() *Residual { return &Residual{} }

// Update computes ||u - u_prev||_2 / max(||u||_2, eps) over all fluid
// cells and stores the field for the next call. Collective.
func (r *Residual) Update(c *comm.Comm, s *sim.Simulation) float64 {
	cur := make(map[[3]int][3]float64)
	var diffSq, normSq float64
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		base := [3]int{
			bd.Block.Coord[0] * cells[0],
			bd.Block.Coord[1] * cells[1],
			bd.Block.Coord[2] * cells[2],
		}
		for z := 0; z < cells[2]; z++ {
			for y := 0; y < cells[1]; y++ {
				for x := 0; x < cells[0]; x++ {
					if bd.Flags.Get(x, y, z) != field.Fluid {
						continue
					}
					_, ux, uy, uz := bd.Src.Moments(x, y, z)
					g := [3]int{base[0] + x, base[1] + y, base[2] + z}
					cur[g] = [3]float64{ux, uy, uz}
					normSq += ux*ux + uy*uy + uz*uz
					if prev, ok := r.prev[g]; ok {
						dx, dy, dz := ux-prev[0], uy-prev[1], uz-prev[2]
						diffSq += dx*dx + dy*dy + dz*dz
					} else {
						diffSq += ux*ux + uy*uy + uz*uz
					}
				}
			}
		}
	}
	first := r.prev == nil
	r.prev = cur
	gDiff := c.AllreduceFloat64(diffSq, comm.Sum[float64])
	gNorm := c.AllreduceFloat64(normSq, comm.Sum[float64])
	if first {
		return math.Inf(1)
	}
	if gNorm < 1e-300 {
		return 0
	}
	return math.Sqrt(gDiff / gNorm)
}

// RunToSteadyState advances the simulation in chunks until the residual
// between chunks drops below tol or maxSteps is reached. Returns the
// steps taken and the final residual. Collective.
func RunToSteadyState(c *comm.Comm, s *sim.Simulation, chunk, maxSteps int, tol float64) (int, float64, error) {
	r := NewResidual()
	r.Update(c, s)
	steps := 0
	res := math.Inf(1)
	for steps < maxSteps {
		if _, err := s.Run(chunk); err != nil {
			return steps, res, err
		}
		steps += chunk
		res = r.Update(c, s)
		if res < tol {
			break
		}
	}
	return steps, res, nil
}
