package analysis

import (
	"math"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/sim"
)

// poiseuilleSim builds a force-driven channel over the given ranks.
func poiseuilleSim(t *testing.T, c *comm.Comm, f *blockforest.SetupForest, force float64) *sim.Simulation {
	t.Helper()
	var in *blockforest.SetupForest
	if c.Rank() == 0 {
		in = f
	}
	forest, err := blockforest.Distribute(c, in)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(c, forest, sim.Config{
		Tau:   0.9,
		Force: [3]float64{force, 0, 0},
		SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
			if b.Neighbor([3]int{0, 0, -1}) == nil {
				sim.MarkGhostFace(flags, lattice.FaceB, field.NoSlip)
			}
			if b.Neighbor([3]int{0, 0, 1}) == nil {
				sim.MarkGhostFace(flags, lattice.FaceT, field.NoSlip)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustRun advances the simulation, failing the test on any rank error.
func mustRun(t *testing.T, s *sim.Simulation, steps int) {
	t.Helper()
	if _, err := s.Run(steps); err != nil {
		t.Fatal(err)
	}
}

func channelForest() *blockforest.SetupForest {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 1, 1}, [3]int{4, 4, 8}, [3]bool{true, true, false})
	f.BalanceMorton(2)
	return f
}

// Mass conservation implies the streamwise flux is identical through
// every cross-section plane.
func TestPlaneFluxUniformAcrossChannel(t *testing.T) {
	f := channelForest()
	comm.Run(2, func(c *comm.Comm) {
		s := poiseuilleSim(t, c, f, 1e-6)
		mustRun(t, s, 2000)
		var fluxes []float64
		for x := 0; x < 8; x++ {
			fluxes = append(fluxes, PlaneFlux(c, s, AxisX, x))
		}
		if c.Rank() != 0 {
			return
		}
		if fluxes[0] <= 0 {
			t.Errorf("no through-flow: flux %v", fluxes[0])
		}
		for x := 1; x < 8; x++ {
			if math.Abs(fluxes[x]-fluxes[0]) > 1e-9*math.Abs(fluxes[0])+1e-15 {
				t.Errorf("flux varies across planes: %v vs %v", fluxes[x], fluxes[0])
			}
		}
	})
}

func TestProbeSeries(t *testing.T) {
	f := channelForest()
	comm.Run(2, func(c *comm.Comm) {
		s := poiseuilleSim(t, c, f, 1e-6)
		// One probe per block owner plus one out-of-domain probe.
		center := NewProbe([3]int{6, 2, 4}) // inside the second block
		outside := NewProbe([3]int{99, 0, 0})
		for i := 0; i < 5; i++ {
			mustRun(t, s, 100)
			center.Sample(c, s, (i+1)*100)
			outside.Sample(c, s, (i+1)*100)
		}
		if center.Len() != 5 || outside.Len() != 5 {
			t.Errorf("series lengths %d, %d", center.Len(), outside.Len())
			return
		}
		// The force accelerates the flow: the probe series is increasing.
		for i := 1; i < 5; i++ {
			if center.Ux[i] <= center.Ux[i-1] {
				t.Errorf("probe ux not increasing: %v", center.Ux)
				break
			}
		}
		if !math.IsNaN(outside.Ux[0]) {
			t.Error("out-of-domain probe did not record NaN")
		}
		// All ranks hold identical series (collective sampling).
		sum := c.AllreduceFloat64(center.Ux[4], comm.Sum[float64])
		if math.Abs(sum-float64(c.Size())*center.Ux[4]) > 1e-12 {
			t.Error("probe series differ across ranks")
		}
	})
}

// The residual monitor converges for a flow approaching steady state and
// RunToSteadyState stops on tolerance.
func TestResidualAndSteadyState(t *testing.T) {
	f := channelForest()
	comm.Run(2, func(c *comm.Comm) {
		s := poiseuilleSim(t, c, f, 1e-6)
		r := NewResidual()
		if !math.IsInf(r.Update(c, s), 1) {
			t.Error("first residual not +Inf")
		}
		mustRun(t, s, 50)
		r1 := r.Update(c, s)
		mustRun(t, s, 400)
		r2 := r.Update(c, s)
		if !(r2 < r1) {
			t.Errorf("residual not decreasing: %v -> %v", r1, r2)
		}
		steps, res, err := RunToSteadyState(c, s, 200, 20000, 1e-6)
		if err != nil {
			t.Error(err)
			return
		}
		if res >= 1e-6 {
			t.Errorf("did not converge: residual %v after %d steps", res, steps)
		}
		if steps == 0 {
			t.Error("no steps taken")
		}
	})
}

// LineProfile across the channel height reproduces the Poiseuille
// parabola shape: symmetric, maximal at the center, lower at the walls.
func TestLineProfilePoiseuille(t *testing.T) {
	f := channelForest()
	comm.Run(2, func(c *comm.Comm) {
		s := poiseuilleSim(t, c, f, 1e-6)
		mustRun(t, s, 3000)
		profile := LineProfile(c, s, AxisZ, [3]int{2, 2, 0}, AxisX)
		if len(profile) != 8 {
			t.Fatalf("profile length %d, want 8", len(profile))
		}
		for z, v := range profile {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("profile[%d] = %v", z, v)
			}
		}
		// Symmetry and center maximum.
		for z := 0; z < 4; z++ {
			if math.Abs(profile[z]-profile[7-z]) > 1e-9 {
				t.Errorf("asymmetric: profile[%d]=%v profile[%d]=%v", z, profile[z], 7-z, profile[7-z])
			}
		}
		if !(profile[3] > profile[0]) {
			t.Errorf("no center maximum: %v", profile)
		}
		// All ranks agree.
		sum := c.AllreduceFloat64(profile[3], comm.Sum[float64])
		if math.Abs(sum-2*profile[3]) > 1e-12 {
			t.Error("ranks disagree on the profile")
		}
	})
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "x" || AxisY.String() != "y" || AxisZ.String() != "z" {
		t.Error("axis names wrong")
	}
}
