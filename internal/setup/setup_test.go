package setup

import (
	"math"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/mesh"
	"walberla/internal/sim"
	"walberla/internal/vascular"
)

func sphereSDF(t *testing.T, r float64) *distance.Field {
	t.Helper()
	f, err := distance.NewField(mesh.NewSphere([3]float64{0, 0, 0}, r, 3))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGridForDx(t *testing.T) {
	bounds := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 0.5, 2})
	grid, domain := GridForDx(bounds, [3]int{10, 10, 10}, 0.05)
	if grid != [3]int{2, 1, 4} {
		t.Errorf("grid = %v, want (2,1,4)", grid)
	}
	// Domain must cover the bounds and consist of whole blocks.
	for d := 0; d < 3; d++ {
		if domain.Min[d] > bounds.Min[d] || domain.Max[d] < bounds.Max[d] {
			t.Errorf("axis %d: domain does not cover bounds", d)
		}
		want := float64(grid[d]) * 10 * 0.05
		if got := domain.Max[d] - domain.Min[d]; math.Abs(got-want) > 1e-12 {
			t.Errorf("axis %d: domain extent %v, want %v", d, got, want)
		}
	}
}

func TestCountInsideCellsMatchesBruteForce(t *testing.T) {
	sdf := sphereSDF(t, 0.8)
	block := blockforest.NewAABB([3]float64{-1, -1, -1}, [3]float64{1, 1, 1})
	cells := [3]int{12, 12, 12}
	got := CountInsideCells(sdf, block, cells)
	want := 0
	for z := 0; z < cells[2]; z++ {
		for y := 0; y < cells[1]; y++ {
			for x := 0; x < cells[0]; x++ {
				p := [3]float64{
					-1 + (float64(x)+0.5)/6,
					-1 + (float64(y)+0.5)/6,
					-1 + (float64(z)+0.5)/6,
				}
				if sdf.Inside(p) {
					want++
				}
			}
		}
	}
	if got != want {
		t.Errorf("CountInsideCells = %d, brute force %d", got, want)
	}
}

func TestBuildForestSerial(t *testing.T) {
	sdf := sphereSDF(t, 0.8)
	f, stats, err := BuildForest(sdf, Options{
		CellsPerBlock: [3]int{8, 8, 8},
		Dx:            0.04, // block edge 0.32: the 5x5x5 grid's corners miss the sphere
		Ranks:         4,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != f.NumBlocks() || stats.Blocks == 0 {
		t.Fatalf("stats.Blocks = %d, forest has %d", stats.Blocks, f.NumBlocks())
	}
	if stats.DiscardedBlocks == 0 {
		t.Error("sphere in its bounding box should discard corner blocks... (none discarded)")
	}
	if stats.FluidFraction <= 0 || stats.FluidFraction > 1 {
		t.Errorf("FluidFraction = %v", stats.FluidFraction)
	}
	// Sphere volume fraction of bounding box is pi/6 ~ 0.52; the kept
	// blocks raise the per-block fill, so expect something near 0.5-0.8.
	if stats.FluidFraction < 0.3 {
		t.Errorf("FluidFraction = %v suspiciously low", stats.FluidFraction)
	}
	if f.MaxRank() >= 4 || f.MaxRank() < 0 {
		t.Errorf("MaxRank = %d", f.MaxRank())
	}
	// Workloads: every kept block has at least one fluid cell (the paper:
	// no blocks with zero fluid cells exist after classification).
	for _, b := range f.Blocks() {
		if b.Workload < 1 {
			t.Errorf("block %v kept with workload %v", b.Coord, b.Workload)
		}
	}
}

// The parallel pipeline must reproduce the serial pipeline exactly.
func TestBuildForestParallelMatchesSerial(t *testing.T) {
	sdf := sphereSDF(t, 0.8)
	opt := Options{
		CellsPerBlock:       [3]int{8, 8, 8},
		Dx:                  0.1,
		Ranks:               4,
		Seed:                7,
		UseGraphPartitioner: true,
	}
	fs, statsS, err := BuildForest(sdf, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 5} {
		comm.Run(ranks, func(c *comm.Comm) {
			fp, statsP, err := BuildForestParallel(c, sdf, opt)
			if err != nil {
				t.Error(err)
				return
			}
			if statsP.Blocks != statsS.Blocks || statsP.FluidCells != statsS.FluidCells {
				t.Errorf("ranks=%d: stats %+v != serial %+v", ranks, statsP, statsS)
				return
			}
			sb, pb := fs.Blocks(), fp.Blocks()
			for i := range sb {
				if sb[i].Coord != pb[i].Coord || sb[i].Workload != pb[i].Workload || sb[i].Rank != pb[i].Rank {
					t.Errorf("ranks=%d block %d: serial %+v parallel %+v", ranks, i, sb[i], pb[i])
					return
				}
			}
		})
	}
}

func TestFindWeakScalingDx(t *testing.T) {
	sdf := sphereSDF(t, 0.8)
	cells := [3]int{8, 8, 8}
	for _, target := range []int{8, 32, 100} {
		dx, blocks, err := FindWeakScalingDx(sdf, cells, target, 24)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if blocks > target {
			t.Errorf("target %d: achieved %d blocks (exceeds)", target, blocks)
		}
		if blocks < target/3 {
			t.Errorf("target %d: only %d blocks achieved at dx=%v", target, blocks, dx)
		}
		if got := countBlocksAtDx(sdf, cells, dx); got != blocks {
			t.Errorf("target %d: recount %d != reported %d", target, got, blocks)
		}
	}
}

func TestFindStrongScalingEdge(t *testing.T) {
	sdf := sphereSDF(t, 0.8)
	const dx = 0.05
	for _, target := range []int{8, 27, 64} {
		edge, blocks, err := FindStrongScalingEdge(sdf, dx, target, 4, 64)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if blocks > target {
			t.Errorf("target %d: %d blocks exceed target (edge %d)", target, blocks, edge)
		}
		if blocks == 0 {
			t.Errorf("target %d: zero blocks", target)
		}
	}
	if _, _, err := FindStrongScalingEdge(sdf, 0.01, 2, 4, 8); err == nil {
		t.Error("infeasible strong scaling search did not error")
	}
}

// End-to-end: coronary tree -> forest -> distributed simulation with
// voxelized flags; inflow drives flow through the root vessel.
func TestEndToEndVascularSimulation(t *testing.T) {
	params := vascular.DefaultParams()
	params.Depth = 1
	params.TubeSegments = 10
	tree := vascular.Generate(params)
	sdf, err := tree.SDF()
	if err != nil {
		t.Fatal(err)
	}
	f, stats, err := BuildForest(sdf, Options{
		CellsPerBlock:       [3]int{10, 10, 10},
		Dx:                  tree.Params.RootRadius / 2.5,
		Ranks:               3,
		Seed:                2,
		UseGraphPartitioner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FluidCells == 0 {
		t.Fatal("no fluid cells")
	}
	comm.Run(3, func(c *comm.Comm) {
		var in *blockforest.SetupForest
		if c.Rank() == 0 {
			in = f
		}
		s, err := NewSimulation(c, in, sdf, sim.Config{
			Kernel: sim.KernelSparse,
			Tau:    0.9,
			Boundary: boundary.Config{
				WallVelocity: [3]float64{0, 0, 0.02}, // inflow pushes along +z (root direction)
				Density:      1.0,
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.Run(50)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if m.TotalFluidCells != stats.FluidCells {
				t.Errorf("simulation fluid cells %d != setup %d", m.TotalFluidCells, stats.FluidCells)
			}
			if m.FluidFraction() >= 1 || m.FluidFraction() <= 0 {
				t.Errorf("fluid fraction %v", m.FluidFraction())
			}
		}
		// Flow developed: some fluid cell has nonzero velocity.
		var localMax float64
		for _, bd := range s.Blocks {
			for z := 0; z < bd.Src.Nz; z++ {
				for y := 0; y < bd.Src.Ny; y++ {
					for x := 0; x < bd.Src.Nx; x++ {
						if bd.Flags.Get(x, y, z) != field.Fluid {
							continue
						}
						_, ux, uy, uz := bd.Src.Moments(x, y, z)
						v := math.Sqrt(ux*ux + uy*uy + uz*uz)
						if v > localMax {
							localMax = v
						}
					}
				}
			}
		}
		globalMax := c.AllreduceFloat64(localMax, comm.Max[float64])
		if globalMax < 1e-6 {
			t.Errorf("no flow developed: max |u| = %v", globalMax)
		}
		if globalMax > 0.3 {
			t.Errorf("unstable flow: max |u| = %v", globalMax)
		}
	})
}
