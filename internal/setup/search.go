package setup

import (
	"fmt"
	"math"

	"walberla/internal/blockforest"
	"walberla/internal/distance"
	"walberla/internal/geometry"
)

// The scaling-experiment searches of section 2.3: a weak scaling needs a
// domain partitioning with a given number of blocks at fixed block size
// while varying the isotropic resolution dx; a strong scaling needs a
// fitting (cubic) block size at fixed dx. Both are solved by binary
// search; because the block count is not monotonic in either parameter and
// an exact solution may not exist, the search returns the partitioning
// with the most blocks that does not exceed the target.

// countBlocksAtDx classifies the grid at resolution dx and returns the
// number of blocks required by the simulation.
func countBlocksAtDx(sdf distance.SDF, cells [3]int, dx float64) int {
	grid, domain := GridForDx(sdf.Bounds(), cells, dx)
	n := 0
	for k := 0; k < grid[2]; k++ {
		for j := 0; j < grid[1]; j++ {
			for i := 0; i < grid[0]; i++ {
				b := blockAABB(domain, grid, cells, [3]int{i, j, k})
				if geometry.BlockIntersectsDomain(sdf, b, cells) {
					n++
				}
			}
		}
	}
	return n
}

func blockAABB(domain blockforest.AABB, grid, cells [3]int, c [3]int) blockforest.AABB {
	s := domain.Size()
	var b blockforest.AABB
	for d := 0; d < 3; d++ {
		w := s[d] / float64(grid[d])
		b.Min[d] = domain.Min[d] + float64(c[d])*w
		b.Max[d] = domain.Min[d] + float64(c[d]+1)*w
	}
	_ = cells
	return b
}

// FindWeakScalingDx searches the isotropic resolution dx at which the
// classified domain partitioning has as many blocks as possible without
// exceeding targetBlocks, for a fixed block size. Returns the resolution
// and the achieved block count.
func FindWeakScalingDx(sdf distance.SDF, cells [3]int, targetBlocks, iterations int) (float64, int, error) {
	if targetBlocks < 1 {
		return 0, 0, fmt.Errorf("setup: invalid block target %d", targetBlocks)
	}
	size := sdf.Bounds().Size()
	maxSize := math.Max(size[0], math.Max(size[1], size[2]))
	// dxHigh: one block covers the whole geometry.
	dxHigh := maxSize / float64(min3(cells))
	// Find dxLow with more blocks than the target.
	dxLow := dxHigh
	nLow := countBlocksAtDx(sdf, cells, dxLow)
	for tries := 0; nLow <= targetBlocks && tries < 60; tries++ {
		dxLow /= 2
		nLow = countBlocksAtDx(sdf, cells, dxLow)
	}
	if nLow <= targetBlocks {
		// Even the finest probed resolution stays under target; return it.
		return dxLow, nLow, nil
	}
	bestDx, bestN := dxHigh, countBlocksAtDx(sdf, cells, dxHigh)
	if bestN > targetBlocks {
		return 0, 0, fmt.Errorf("setup: coarsest partitioning already exceeds target %d", targetBlocks)
	}
	lo, hi := dxLow, dxHigh // blocks(lo) > target >= blocks(hi)
	for it := 0; it < iterations; it++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: dx spans decades
		n := countBlocksAtDx(sdf, cells, mid)
		if n > targetBlocks {
			lo = mid
			continue
		}
		if n > bestN {
			bestDx, bestN = mid, n
		}
		hi = mid
	}
	return bestDx, bestN, nil
}

func min3(v [3]int) int {
	m := v[0]
	if v[1] < m {
		m = v[1]
	}
	if v[2] < m {
		m = v[2]
	}
	return m
}

// FindStrongScalingEdge searches the cubic block edge length (in cells)
// at which the partitioning at fixed resolution dx has as many blocks as
// possible without exceeding targetBlocks. The search bisects over the
// integer edge length and then scans the neighborhood of the boundary, as
// the block count is not strictly monotonic.
func FindStrongScalingEdge(sdf distance.SDF, dx float64, targetBlocks, minEdge, maxEdge int) (int, int, error) {
	if targetBlocks < 1 || minEdge < 1 || maxEdge < minEdge {
		return 0, 0, fmt.Errorf("setup: invalid strong scaling search parameters")
	}
	count := func(edge int) int {
		return countBlocksAtDx(sdf, [3]int{edge, edge, edge}, dx)
	}
	if n := count(maxEdge); n > targetBlocks {
		return 0, 0, fmt.Errorf("setup: largest block edge %d still yields %d > %d blocks", maxEdge, n, targetBlocks)
	}
	// Bisect for the smallest edge whose count does not exceed the target.
	lo, hi := minEdge, maxEdge // count(hi) <= target
	if count(lo) <= targetBlocks {
		hi = lo
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if count(mid) <= targetBlocks {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bestEdge, bestN := hi, count(hi)
	// Non-monotonicity scan around the boundary.
	for e := hi; e <= hi+3 && e <= maxEdge; e++ {
		if n := count(e); n <= targetBlocks && n > bestN {
			bestEdge, bestN = e, n
		}
	}
	return bestEdge, bestN, nil
}
