// Package setup implements the fully parallel initialization pipeline of
// section 2.3: building the block grid over a complex geometry, deciding
// in parallel which blocks the simulation requires, counting fluid cells
// per block as balancing workload, static load balancing, and the
// per-block voxelization and boundary-condition assignment hooks for the
// simulation. It also provides the binary searches in resolution (weak
// scaling) and block edge length (strong scaling) that produce domain
// partitionings matching a target block count.
package setup

import (
	"fmt"
	"math"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/geometry"
	"walberla/internal/lattice"
	"walberla/internal/partition"
	"walberla/internal/sim"
)

// GridForDx computes the root block grid covering the bounding box of the
// geometry at isotropic resolution dx with the given cells per block, and
// the padded domain box the grid spans (the mesh is centered within it).
func GridForDx(bounds blockforest.AABB, cells [3]int, dx float64) (grid [3]int, domain blockforest.AABB) {
	size := bounds.Size()
	for d := 0; d < 3; d++ {
		blockLen := float64(cells[d]) * dx
		g := int(math.Ceil(size[d]/blockLen - 1e-12))
		if g < 1 {
			g = 1
		}
		grid[d] = g
		pad := (float64(g)*blockLen - size[d]) / 2
		domain.Min[d] = bounds.Min[d] - pad
		domain.Max[d] = bounds.Max[d] + pad
	}
	return grid, domain
}

// CountInsideCells counts the lattice cell centers of a block that lie
// inside the domain, using the same recursive region pruning as the
// voxelization (far cheaper than testing every cell).
func CountInsideCells(sdf distance.SDF, block blockforest.AABB, cells [3]int) int {
	dx := [3]float64{
		(block.Max[0] - block.Min[0]) / float64(cells[0]),
		(block.Max[1] - block.Min[1]) / float64(cells[1]),
		(block.Max[2] - block.Min[2]) / float64(cells[2]),
	}
	return countRegion(sdf, block, dx, [3]int{0, 0, 0}, cells)
}

func countRegion(sdf distance.SDF, block blockforest.AABB, dx [3]float64, lo, hi [3]int) int {
	nx, ny, nz := hi[0]-lo[0], hi[1]-lo[1], hi[2]-lo[2]
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return 0
	}
	region := centerRegion(block, dx, lo, hi)
	switch geometry.ClassifyAABB(sdf, region) {
	case geometry.RegionOutside:
		return 0
	case geometry.RegionInside:
		return nx * ny * nz
	}
	if nx*ny*nz <= 8 {
		n := 0
		for z := lo[2]; z < hi[2]; z++ {
			for y := lo[1]; y < hi[1]; y++ {
				for x := lo[0]; x < hi[0]; x++ {
					p := [3]float64{
						block.Min[0] + (float64(x)+0.5)*dx[0],
						block.Min[1] + (float64(y)+0.5)*dx[1],
						block.Min[2] + (float64(z)+0.5)*dx[2],
					}
					if sdf.Inside(p) {
						n++
					}
				}
			}
		}
		return n
	}
	axis := 0
	if ny > nx {
		axis = 1
	}
	if nz > max(nx, ny) {
		axis = 2
	}
	mid := (lo[axis] + hi[axis]) / 2
	hiA, loB := hi, lo
	hiA[axis] = mid
	loB[axis] = mid
	return countRegion(sdf, block, dx, lo, hiA) + countRegion(sdf, block, dx, loB, hi)
}

func centerRegion(block blockforest.AABB, dx [3]float64, lo, hi [3]int) blockforest.AABB {
	var b blockforest.AABB
	for d := 0; d < 3; d++ {
		b.Min[d] = block.Min[d] + (float64(lo[d])+0.5)*dx[d]
		b.Max[d] = block.Min[d] + (float64(hi[d]-1)+0.5)*dx[d]
	}
	return b
}

// Options configures the initialization pipeline.
type Options struct {
	// CellsPerBlock is the lattice cell grid per block.
	CellsPerBlock [3]int
	// Dx is the isotropic lattice spacing.
	Dx float64
	// Ranks is the process count the forest is balanced for.
	Ranks int
	// MemoryLimitCells caps allocated cells per rank during balancing;
	// zero disables the constraint.
	MemoryLimitCells float64
	// Seed drives the randomized stages (block scatter, partitioner).
	Seed int64
	// UseGraphPartitioner selects METIS-style balancing (the paper's
	// choice for complex geometries); false selects Morton curve
	// balancing (sufficient for dense regular domains).
	UseGraphPartitioner bool
}

// Stats reports what the pipeline produced.
type Stats struct {
	Grid            [3]int
	Blocks          int
	DiscardedBlocks int
	FluidCells      int64
	TotalCells      int64
	FluidFraction   float64
	Dx              float64
}

// BuildForest runs the serial version of the pipeline (classification and
// workload counting on the calling goroutine). For the SPMD version see
// BuildForestParallel.
func BuildForest(sdf distance.SDF, opt Options) (*blockforest.SetupForest, Stats, error) {
	grid, domain := GridForDx(sdf.Bounds(), opt.CellsPerBlock, opt.Dx)
	f := blockforest.NewSetupForest(domain, grid, opt.CellsPerBlock, [3]bool{})
	discarded := f.Keep(func(b *blockforest.SetupBlock) bool {
		return geometry.BlockIntersectsDomain(sdf, b.AABB, opt.CellsPerBlock)
	})
	var fluid int64
	for _, b := range f.Blocks() {
		n := CountInsideCells(sdf, b.AABB, opt.CellsPerBlock)
		b.Workload = float64(n)
		fluid += int64(n)
	}
	if err := balance(f, opt); err != nil {
		return nil, Stats{}, err
	}
	return f, statsFor(f, grid, discarded, fluid, opt.Dx), nil
}

func balance(f *blockforest.SetupForest, opt Options) error {
	if opt.Ranks <= 0 {
		return fmt.Errorf("setup: invalid rank count %d", opt.Ranks)
	}
	if opt.UseGraphPartitioner {
		return partition.BalanceGraph(f, opt.Ranks, opt.MemoryLimitCells, opt.Seed)
	}
	f.BalanceMorton(opt.Ranks)
	return nil
}

func statsFor(f *blockforest.SetupForest, grid [3]int, discarded int, fluid int64, dx float64) Stats {
	total := f.TotalCells()
	s := Stats{
		Grid:            grid,
		Blocks:          f.NumBlocks(),
		DiscardedBlocks: discarded,
		FluidCells:      fluid,
		TotalCells:      total,
		Dx:              dx,
	}
	if total > 0 {
		s.FluidFraction = float64(fluid) / float64(total)
	}
	return s
}

// BuildForestParallel runs the pipeline SPMD over a communicator: blocks
// are randomly scattered for classification and workload counting, results
// are gathered on all ranks, and the balancing runs redundantly but
// deterministically. Every rank returns the identical forest.
func BuildForestParallel(c *comm.Comm, sdf distance.SDF, opt Options) (*blockforest.SetupForest, Stats, error) {
	grid, domain := GridForDx(sdf.Bounds(), opt.CellsPerBlock, opt.Dx)
	f := blockforest.NewSetupForest(domain, grid, opt.CellsPerBlock, [3]bool{})
	before := f.NumBlocks()
	keep := geometry.ClassifyBlocksParallel(c, sdf, f, opt.Seed)
	discarded := before - len(keep)
	geometry.ApplyClassification(f, keep)

	// Parallel workload counting with the same scatter pattern: each rank
	// counts its share, then the (index, count) pairs are allgathered.
	blocks := f.Blocks()
	var mine []int64 // interleaved index, count
	for i, b := range blocks {
		if i%c.Size() != c.Rank() {
			continue
		}
		n := CountInsideCells(sdf, b.AABB, opt.CellsPerBlock)
		mine = append(mine, int64(i), int64(n))
	}
	gathered := c.Allgather(mine)
	var fluid int64
	for _, part := range gathered {
		if part == nil {
			continue
		}
		pairs := part.([]int64)
		for i := 0; i < len(pairs); i += 2 {
			blocks[pairs[i]].Workload = float64(pairs[i+1])
			fluid += pairs[i+1]
		}
	}
	if err := balance(f, opt); err != nil {
		return nil, Stats{}, err
	}
	return f, statsFor(f, grid, discarded, fluid, opt.Dx), nil
}

// FlagsFromSDF returns a simulation setup hook that voxelizes each block
// against the SDF and computes the boundary hull with condition assignment
// from surface colors — the per-process initialization of the paper ("every
// process voxelizes its blocks independently").
func FlagsFromSDF(sdf distance.SDF) func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	return func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
		geometry.Voxelize(sdf, b.AABB, flags)
		geometry.DilateBoundary(sdf, b.AABB, flags, lattice.D3Q19())
	}
}

// NewSimulation is the end-to-end convenience: distribute the forest built
// by rank 0, voxelize locally, and construct the simulation.
func NewSimulation(c *comm.Comm, f *blockforest.SetupForest, sdf distance.SDF, cfg sim.Config) (*sim.Simulation, error) {
	var in *blockforest.SetupForest
	if c.Rank() == 0 {
		in = f
	}
	forest, err := blockforest.Distribute(c, in)
	if err != nil {
		return nil, err
	}
	if cfg.SetupFlags == nil {
		cfg.SetupFlags = FlagsFromSDF(sdf)
	}
	return sim.New(c, forest, cfg)
}
