// Package distance implements the implicit signed distance function
// phi(p, Gamma) = z * d(p, Gamma) of section 2.3: the distance of a point
// to a triangle surface mesh (point-triangle distance after Jones), with
// the sign computed from angle-weighted pseudonormals (Bærentzen-Aanæs)
// of the closest feature, and an octree over the triangle set
// (Payne-Toga) reducing the number of point-triangle distances evaluated.
package distance

import (
	"walberla/internal/mesh"
)

// Feature classifies the closest feature of a triangle to a query point;
// the sign computation selects the matching pseudonormal.
type Feature int

// Triangle features.
const (
	FeatureFace  Feature = iota
	FeatureEdge0         // edge (v0, v1)
	FeatureEdge1         // edge (v1, v2)
	FeatureEdge2         // edge (v2, v0)
	FeatureVertex0
	FeatureVertex1
	FeatureVertex2
)

// ClosestPointTriangle returns the point of triangle (a, b, c) closest to
// p and the feature it lies on. It is the standard Voronoi-region
// classification: barycentric coordinates decide whether the projection
// falls inside the face or must be clamped to an edge or vertex.
func ClosestPointTriangle(p, a, b, c [3]float64) (closest [3]float64, feat Feature) {
	ab := mesh.Sub(b, a)
	ac := mesh.Sub(c, a)
	ap := mesh.Sub(p, a)

	d1 := mesh.Dot(ab, ap)
	d2 := mesh.Dot(ac, ap)
	if d1 <= 0 && d2 <= 0 {
		return a, FeatureVertex0
	}

	bp := mesh.Sub(p, b)
	d3 := mesh.Dot(ab, bp)
	d4 := mesh.Dot(ac, bp)
	if d3 >= 0 && d4 <= d3 {
		return b, FeatureVertex1
	}

	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return mesh.Add(a, mesh.Scale(ab, v)), FeatureEdge0
	}

	cp := mesh.Sub(p, c)
	d5 := mesh.Dot(ab, cp)
	d6 := mesh.Dot(ac, cp)
	if d6 >= 0 && d5 <= d6 {
		return c, FeatureVertex2
	}

	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return mesh.Add(a, mesh.Scale(ac, w)), FeatureEdge2
	}

	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return mesh.Add(b, mesh.Scale(mesh.Sub(c, b), w)), FeatureEdge1
	}

	denom := 1.0 / (va + vb + vc)
	v := vb * denom
	w := vc * denom
	return mesh.Add(a, mesh.Add(mesh.Scale(ab, v), mesh.Scale(ac, w))), FeatureFace
}

// PointTriangleDistSq returns the squared distance from p to the triangle
// and the closest feature.
func PointTriangleDistSq(p, a, b, c [3]float64) (float64, [3]float64, Feature) {
	q, feat := ClosestPointTriangle(p, a, b, c)
	d := mesh.Sub(p, q)
	return mesh.Dot(d, d), q, feat
}
