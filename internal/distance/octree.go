package distance

import (
	"math"

	"walberla/internal/blockforest"
	"walberla/internal/mesh"
)

// Octree spatially subdivides the triangle set of a mesh (Payne and Toga)
// so that nearest-triangle queries prune whole subtrees by comparing the
// current best distance against the distance to a node's bounding box.
type Octree struct {
	m    *mesh.Mesh
	root *octreeNode
	// stats
	nodes, leaves int
}

type octreeNode struct {
	bounds   blockforest.AABB
	children [8]*octreeNode // nil for leaves
	tris     []int32        // triangle indices at leaves
	leaf     bool
}

// Build parameters: leaves hold at most maxLeafTris triangles unless depth
// exceeds maxDepth.
const (
	maxLeafTris = 16
	maxDepth    = 12
)

// NewOctree builds the triangle octree of a mesh.
func NewOctree(m *mesh.Mesh) *Octree {
	o := &Octree{m: m}
	bounds := m.Bounds()
	// Expand slightly so every triangle is strictly interior (guards
	// against degenerate flat domains).
	eps := 1e-9 + 1e-9*mesh.Norm(mesh.Sub(bounds.Max, bounds.Min))
	for i := 0; i < 3; i++ {
		bounds.Min[i] -= eps
		bounds.Max[i] += eps
	}
	all := make([]int32, m.TriangleCount())
	for i := range all {
		all[i] = int32(i)
	}
	o.root = o.build(bounds, all, 0)
	return o
}

// triBounds returns the bounding box of triangle t.
func (o *Octree) triBounds(t int32) blockforest.AABB {
	a, b, c := o.m.TriangleVertices(int(t))
	bb := blockforest.AABB{Min: a, Max: a}
	for _, v := range [][3]float64{b, c} {
		for i := 0; i < 3; i++ {
			if v[i] < bb.Min[i] {
				bb.Min[i] = v[i]
			}
			if v[i] > bb.Max[i] {
				bb.Max[i] = v[i]
			}
		}
	}
	return bb
}

func (o *Octree) build(bounds blockforest.AABB, tris []int32, depth int) *octreeNode {
	n := &octreeNode{bounds: bounds}
	o.nodes++
	if len(tris) <= maxLeafTris || depth >= maxDepth {
		n.tris = tris
		n.leaf = true
		o.leaves++
		return n
	}
	buckets := make([][]int32, 8)
	kept := tris[:0:0]
	for _, t := range tris {
		tb := o.triBounds(t)
		placed := false
		for i := 0; i < 8; i++ {
			oct := bounds.Octant(i)
			if containsBox(oct, tb) {
				buckets[i] = append(buckets[i], t)
				placed = true
				break
			}
		}
		if !placed {
			// Straddles octant boundaries: keep at this node.
			kept = append(kept, t)
		}
	}
	n.tris = kept
	subdivided := false
	for i := 0; i < 8; i++ {
		if len(buckets[i]) > 0 {
			n.children[i] = o.build(bounds.Octant(i), buckets[i], depth+1)
			subdivided = true
		}
	}
	if !subdivided {
		n.leaf = true
		o.leaves++
	}
	return n
}

func containsBox(outer, inner blockforest.AABB) bool {
	for i := 0; i < 3; i++ {
		if inner.Min[i] < outer.Min[i] || inner.Max[i] > outer.Max[i] {
			return false
		}
	}
	return true
}

// distSqToBox returns the squared distance from p to the box (zero if p is
// inside).
func distSqToBox(p [3]float64, b blockforest.AABB) float64 {
	var d float64
	for i := 0; i < 3; i++ {
		if p[i] < b.Min[i] {
			v := b.Min[i] - p[i]
			d += v * v
		} else if p[i] > b.Max[i] {
			v := p[i] - b.Max[i]
			d += v * v
		}
	}
	return d
}

// Nearest returns the triangle of the mesh closest to p, the closest point
// on it, the squared distance and the closest feature — the arg-min
// triangle t̂(p) of equation (11).
func (o *Octree) Nearest(p [3]float64) (tri int, closest [3]float64, distSq float64, feat Feature) {
	best := math.Inf(1)
	var bestTri int = -1
	var bestPt [3]float64
	var bestFeat Feature
	var walk func(n *octreeNode)
	walk = func(n *octreeNode) {
		if n == nil || distSqToBox(p, n.bounds) >= best {
			return
		}
		for _, t := range n.tris {
			a, b, c := o.m.TriangleVertices(int(t))
			d, q, f := PointTriangleDistSq(p, a, b, c)
			if d < best {
				best, bestTri, bestPt, bestFeat = d, int(t), q, f
			}
		}
		if n.leaf {
			return
		}
		// Visit children nearest-first for effective pruning.
		type cand struct {
			i int
			d float64
		}
		var order [8]cand
		cnt := 0
		for i := 0; i < 8; i++ {
			if n.children[i] != nil {
				order[cnt] = cand{i, distSqToBox(p, n.children[i].bounds)}
				cnt++
			}
		}
		for i := 1; i < cnt; i++ { // insertion sort on <= 8 entries
			for j := i; j > 0 && order[j].d < order[j-1].d; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for i := 0; i < cnt; i++ {
			walk(n.children[order[i].i])
		}
	}
	walk(o.root)
	return bestTri, bestPt, best, bestFeat
}

// Stats returns the node and leaf counts of the tree.
func (o *Octree) Stats() (nodes, leaves int) { return o.nodes, o.leaves }
