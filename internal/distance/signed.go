package distance

import (
	"math"

	"walberla/internal/mesh"
)

// Field is the implicit signed distance function phi(p, Gamma) of a
// watertight surface mesh: negative inside, positive outside, zero on the
// surface. Queries are accelerated by the triangle octree; the sign comes
// from the angle-weighted pseudonormal of the closest feature.
type Field struct {
	Mesh *mesh.Mesh

	tree *Octree
	pn   *Pseudonormals
}

// NewField builds the signed distance field of a mesh. The mesh must be
// watertight with outward-facing normals.
func NewField(m *mesh.Mesh) (*Field, error) {
	pn, err := NewPseudonormals(m)
	if err != nil {
		return nil, err
	}
	return &Field{Mesh: m, tree: NewOctree(m), pn: pn}, nil
}

// Nearest returns the closest triangle t̂(p) and the closest surface point.
func (f *Field) Nearest(p [3]float64) (tri int, closest [3]float64) {
	t, q, _, _ := f.tree.Nearest(p)
	return t, q
}

// Distance returns the unsigned distance d(p, Gamma).
func (f *Field) Distance(p [3]float64) float64 {
	_, _, d2, _ := f.tree.Nearest(p)
	return math.Sqrt(d2)
}

// Signed returns phi(p, Gamma) = z * d(p, Gamma) with z = -1 inside.
func (f *Field) Signed(p [3]float64) float64 {
	t, q, d2, feat := f.tree.Nearest(p)
	if t < 0 {
		return math.Inf(1)
	}
	n := f.pn.Normal(t, feat)
	if mesh.Dot(mesh.Sub(p, q), n) < 0 {
		return -math.Sqrt(d2)
	}
	return math.Sqrt(d2)
}

// Inside reports whether p lies strictly inside the surface, i.e.
// d(p,Gamma)^2 has negative sign — the test used for lattice cell centers.
func (f *Field) Inside(p [3]float64) bool {
	t, q, _, feat := f.tree.Nearest(p)
	if t < 0 {
		return false
	}
	return mesh.Dot(mesh.Sub(p, q), f.pn.Normal(t, feat)) < 0
}

// ClosestTriangleColor returns the color of the closest triangle, used to
// assign boundary conditions to boundary lattice cells from the mesh's
// vertex colors.
func (f *Field) ClosestTriangleColor(p [3]float64) mesh.Color {
	t, _, _, _ := f.tree.Nearest(p)
	if t < 0 {
		return mesh.ColorWall
	}
	return f.Mesh.TriangleColor(t)
}

// Tree exposes the octree for statistics.
func (f *Field) Tree() *Octree { return f.tree }
