package distance

import (
	"math"

	"walberla/internal/blockforest"
	"walberla/internal/mesh"
)

// SDF is an implicit signed distance description of a domain: negative
// inside the fluid, positive outside. Field implements it for a single
// watertight mesh; Union combines several.
type SDF interface {
	// Signed returns phi(p).
	Signed(p [3]float64) float64
	// Inside reports phi(p) < 0.
	Inside(p [3]float64) bool
	// ClosestTriangleColor returns the boundary color of the nearest
	// surface element, used for boundary condition assignment.
	ClosestTriangleColor(p [3]float64) mesh.Color
	// Bounds returns an axis-aligned bounding box of the domain.
	Bounds() blockforest.AABB
}

// Bounds implements SDF for Field.
func (f *Field) Bounds() blockforest.AABB { return f.Mesh.Bounds() }

var _ SDF = (*Field)(nil)
var _ SDF = (*Union)(nil)

// Union is the implicit union of component domains:
//
//	phi_union(p) = min_i phi_i(p).
//
// The sign (the quantity the voxelization needs) is exact; the magnitude
// is a lower bound inside overlap regions. Component bounding boxes prune
// evaluations: a component whose box is farther away than the current best
// distance cannot improve the minimum.
type Union struct {
	components []SDF
	boxes      []blockforest.AABB
	bounds     blockforest.AABB
}

// NewUnion combines the given domains; at least one is required.
func NewUnion(components ...SDF) *Union {
	if len(components) == 0 {
		panic("distance: empty union")
	}
	u := &Union{components: components}
	u.boxes = make([]blockforest.AABB, len(components))
	for i, c := range components {
		u.boxes[i] = c.Bounds()
	}
	u.bounds = u.boxes[0]
	for _, b := range u.boxes[1:] {
		for d := 0; d < 3; d++ {
			u.bounds.Min[d] = math.Min(u.bounds.Min[d], b.Min[d])
			u.bounds.Max[d] = math.Max(u.bounds.Max[d], b.Max[d])
		}
	}
	return u
}

// Bounds implements SDF.
func (u *Union) Bounds() blockforest.AABB { return u.bounds }

// Signed implements SDF.
func (u *Union) Signed(p [3]float64) float64 {
	v, _ := u.signedArg(p)
	return v
}

// signedArg returns the union value and the index of the minimizing
// component.
func (u *Union) signedArg(p [3]float64) (float64, int) {
	best := math.Inf(1)
	arg := -1
	for i, c := range u.components {
		// A component cannot beat the current best if even its bounding
		// box is farther away (box distance lower-bounds |phi_i| outside).
		if arg >= 0 && best < 0 {
			// Already inside some component; a component can only deepen
			// the minimum if p is inside it, i.e. p must be in its box.
			if !u.boxes[i].Contains(p) {
				continue
			}
		} else if arg >= 0 {
			if d := math.Sqrt(distSqToBox(p, u.boxes[i])); d >= best {
				continue
			}
		}
		if v := c.Signed(p); v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Inside implements SDF.
func (u *Union) Inside(p [3]float64) bool {
	for i, c := range u.components {
		if !u.boxes[i].Contains(p) {
			continue
		}
		if c.Inside(p) {
			return true
		}
	}
	return false
}

// ClosestTriangleColor implements SDF: the color comes from the component
// realizing the union minimum.
func (u *Union) ClosestTriangleColor(p [3]float64) mesh.Color {
	_, arg := u.signedArg(p)
	if arg < 0 {
		return mesh.ColorWall
	}
	return u.components[arg].ClosestTriangleColor(p)
}
