package distance

import (
	"math"
	"math/rand"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/mesh"
)

func mustField(t *testing.T, m *mesh.Mesh) *Field {
	t.Helper()
	f, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnionOfTwoSpheres(t *testing.T) {
	a := mustField(t, mesh.NewSphere([3]float64{-1, 0, 0}, 0.8, 2))
	b := mustField(t, mesh.NewSphere([3]float64{1, 0, 0}, 0.8, 2))
	u := NewUnion(a, b)

	// Inside either component.
	if !u.Inside([3]float64{-1, 0, 0}) || !u.Inside([3]float64{1, 0, 0}) {
		t.Error("sphere centers not inside union")
	}
	// The overlap region (spheres of radius 0.8 at distance 2 just miss
	// each other) — the midpoint is outside both.
	if u.Inside([3]float64{0, 0, 0}) {
		t.Error("gap point classified inside")
	}
	// Overlapping case.
	c := mustField(t, mesh.NewSphere([3]float64{0.5, 0, 0}, 0.8, 2))
	u2 := NewUnion(a, c)
	if !u2.Inside([3]float64{-0.2, 0, 0}) {
		t.Error("overlap region not inside")
	}
	// Union sign equals min over components everywhere.
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		p := [3]float64{r.Float64()*4 - 2, r.Float64()*2 - 1, r.Float64()*2 - 1}
		want := math.Min(a.Signed(p), c.Signed(p))
		if got := u2.Signed(p); math.Abs(got-want) > 1e-12 {
			t.Fatalf("union phi(%v) = %v, want min %v", p, got, want)
		}
		if u2.Inside(p) != (want < 0) {
			t.Fatalf("union Inside(%v) inconsistent with phi %v", p, want)
		}
	}
}

func TestUnionBounds(t *testing.T) {
	a := mustField(t, mesh.NewSphere([3]float64{-2, 0, 0}, 0.5, 1))
	b := mustField(t, mesh.NewSphere([3]float64{3, 1, -1}, 0.5, 1))
	u := NewUnion(a, b)
	bounds := u.Bounds()
	// Probe points strictly inside each component's extent (the faceted
	// icosphere does not reach the full radius on every axis).
	for _, p := range [][3]float64{{-2.4, -0.4, -0.4}, {3.4, 1.4, -0.6}} {
		if !bounds.Contains(p) {
			t.Errorf("union bounds %+v miss %v", bounds, p)
		}
	}
}

func TestUnionColorFromClosestComponent(t *testing.T) {
	// Two tubes with different cap colors; probes near each inlet pick the
	// right component's color.
	a := mustField(t, mesh.NewTube([3]float64{0, 0, 0}, [3]float64{0, 0, 1}, 0.2, 12, mesh.ColorInflow, mesh.ColorWall))
	b := mustField(t, mesh.NewTube([3]float64{3, 0, 0}, [3]float64{3, 0, 1}, 0.2, 12, mesh.ColorWall, mesh.ColorOutflow))
	u := NewUnion(a, b)
	if got := u.ClosestTriangleColor([3]float64{0, 0, -0.05}); got != mesh.ColorInflow {
		t.Errorf("near tube A inlet: %v", got)
	}
	if got := u.ClosestTriangleColor([3]float64{3, 0, 1.05}); got != mesh.ColorOutflow {
		t.Errorf("near tube B outlet: %v", got)
	}
}

func TestUnionPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty union accepted")
		}
	}()
	NewUnion()
}

func TestFieldNearestAndDistance(t *testing.T) {
	f := mustField(t, mesh.NewSphere([3]float64{0, 0, 0}, 1, 2))
	tri, closest := f.Nearest([3]float64{2, 0, 0})
	if tri < 0 {
		t.Fatal("no nearest triangle")
	}
	if r := mesh.Norm(closest); math.Abs(r-1) > 0.02 {
		t.Errorf("closest point radius %v, want ~1", r)
	}
	if d := f.Distance([3]float64{2, 0, 0}); math.Abs(d-1) > 0.02 {
		t.Errorf("distance %v, want ~1", d)
	}
}

// Every pseudonormal feature branch of Normal is exercised by probing a
// box from positions whose closest features are known.
func TestPseudonormalFeatureBranches(t *testing.T) {
	m := mesh.NewBox(blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}))
	f := mustField(t, m)
	probes := [][3]float64{
		{0.5, 0.5, 2},    // face
		{2, 2, 0.5},      // edge
		{2, 2, 2},        // vertex
		{-1, 0.5, 0.5},   // face
		{-1, -1, 0.5},    // edge
		{-1, -1, -1},     // vertex
		{0.5, 2, 0.5},    // face
		{0.5, -0.5, 1.5}, // edge region
	}
	for _, p := range probes {
		tri, q, _, feat := f.Tree().Nearest(p)
		n := f.pn.Normal(tri, feat)
		if math.Abs(mesh.Norm(n)-1) > 1e-12 {
			t.Errorf("pseudonormal at %v (feature %v) not unit: %v", p, feat, n)
		}
		// Outside probes: the vector to the probe has positive dot product
		// with the pseudonormal.
		if mesh.Dot(mesh.Sub(p, q), n) <= 0 {
			t.Errorf("probe %v misclassified by feature %v", p, feat)
		}
	}
}

func TestEdgePseudonormalLookupOrderIndependent(t *testing.T) {
	m := mesh.NewBox(blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}))
	pn, err := NewPseudonormals(m)
	if err != nil {
		t.Fatal(err)
	}
	tri := m.Triangles[0]
	if pn.Edge(tri[0], tri[1]) != pn.Edge(tri[1], tri[0]) {
		t.Error("edge pseudonormal depends on vertex order")
	}
}
