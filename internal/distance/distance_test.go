package distance

import (
	"math"
	"math/rand"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/mesh"
)

func TestClosestPointTriangleRegions(t *testing.T) {
	a := [3]float64{0, 0, 0}
	b := [3]float64{2, 0, 0}
	c := [3]float64{0, 2, 0}
	cases := []struct {
		p     [3]float64
		wantQ [3]float64
		wantF Feature
	}{
		{[3]float64{0.5, 0.5, 1}, [3]float64{0.5, 0.5, 0}, FeatureFace},
		{[3]float64{-1, -1, 0}, a, FeatureVertex0},
		{[3]float64{3, -1, 0}, b, FeatureVertex1},
		{[3]float64{-1, 3, 0}, c, FeatureVertex2},
		{[3]float64{1, -1, 0}, [3]float64{1, 0, 0}, FeatureEdge0},
		{[3]float64{2, 2, 0}, [3]float64{1, 1, 0}, FeatureEdge1},
		{[3]float64{-1, 1, 0}, [3]float64{0, 1, 0}, FeatureEdge2},
	}
	for i, tc := range cases {
		q, f := ClosestPointTriangle(tc.p, a, b, c)
		if f != tc.wantF {
			t.Errorf("case %d: feature %v, want %v", i, f, tc.wantF)
		}
		if mesh.Norm(mesh.Sub(q, tc.wantQ)) > 1e-14 {
			t.Errorf("case %d: closest %v, want %v", i, q, tc.wantQ)
		}
	}
}

// Property: the reported closest point is never farther than any sampled
// point of the triangle.
func TestClosestPointIsMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		var a, b, c, p [3]float64
		for i := 0; i < 3; i++ {
			a[i] = r.Float64()*4 - 2
			b[i] = r.Float64()*4 - 2
			c[i] = r.Float64()*4 - 2
			p[i] = r.Float64()*8 - 4
		}
		d2, q, _ := PointTriangleDistSq(p, a, b, c)
		// Sample barycentric points.
		for s := 0; s < 30; s++ {
			u := r.Float64()
			v := r.Float64() * (1 - u)
			w := 1 - u - v
			pt := mesh.Add(mesh.Add(mesh.Scale(a, u), mesh.Scale(b, v)), mesh.Scale(c, w))
			dd := mesh.Sub(p, pt)
			if mesh.Dot(dd, dd) < d2-1e-12 {
				t.Fatalf("found closer point %v than %v (d2=%v)", pt, q, d2)
			}
		}
	}
}

func sphereMesh() *mesh.Mesh {
	return mesh.NewSphere([3]float64{0, 0, 0}, 1.0, 3)
}

func TestSignedDistanceSphere(t *testing.T) {
	f, err := NewField(sphereMesh())
	if err != nil {
		t.Fatal(err)
	}
	// Points along a ray: the signed distance of an icosphere approximates
	// r - 1 (slightly inside the unit sphere due to faceting).
	dirs := [][3]float64{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		mesh.Normalize([3]float64{1, 1, 1}),
		mesh.Normalize([3]float64{-1, 2, 0.5}),
	}
	for _, dir := range dirs {
		for _, r := range []float64{0.2, 0.5, 0.9, 1.1, 1.5, 3.0} {
			p := mesh.Scale(dir, r)
			got := f.Signed(p)
			want := r - 1.0
			if math.Abs(got-want) > 0.02 {
				t.Errorf("phi(%v) = %v, want ~%v", p, got, want)
			}
			if (got < 0) != (r < 0.997) { // faceted sphere slightly inside
				t.Errorf("sign of phi at r=%v: %v", r, got)
			}
		}
	}
	// Center is inside at depth ~1.
	if got := f.Signed([3]float64{0, 0, 0}); math.Abs(got+1) > 0.02 {
		t.Errorf("phi(center) = %v, want ~-1", got)
	}
}

func TestSignedDistanceBox(t *testing.T) {
	box := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{2, 2, 2})
	f, err := NewField(mesh.NewBox(box))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    [3]float64
		want float64
	}{
		{[3]float64{1, 1, 1}, -1},              // center
		{[3]float64{0.5, 1, 1}, -0.5},          // near -x face
		{[3]float64{3, 1, 1}, 1},               // outside +x face
		{[3]float64{3, 3, 1}, math.Sqrt2},      // outside edge
		{[3]float64{-1, -1, -1}, math.Sqrt(3)}, // outside corner
		{[3]float64{1, 1, 1.75}, -0.25},
	}
	for i, tc := range cases {
		got := f.Signed(tc.p)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: phi(%v) = %v, want %v", i, tc.p, got, tc.want)
		}
	}
}

// The edge and corner exterior sign cases are exactly where naive face
// normals fail and pseudonormals are required.
func TestPseudonormalSignNearEdges(t *testing.T) {
	box := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f, err := NewField(mesh.NewBox(box))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		// Random points in an enclosing box; classify analytically.
		p := [3]float64{r.Float64()*3 - 1, r.Float64()*3 - 1, r.Float64()*3 - 1}
		inside := p[0] > 0 && p[0] < 1 && p[1] > 0 && p[1] < 1 && p[2] > 0 && p[2] < 1
		if got := f.Inside(p); got != inside {
			t.Fatalf("Inside(%v) = %v, want %v (phi=%v)", p, got, inside, f.Signed(p))
		}
	}
}

func TestPseudonormalsTables(t *testing.T) {
	m := mesh.NewBox(blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}))
	pn, err := NewPseudonormals(m)
	if err != nil {
		t.Fatal(err)
	}
	// Corner vertex (0,0,0) pseudonormal must point along -(1,1,1).
	var idx int32 = -1
	for i, v := range m.Vertices {
		if v == [3]float64{0, 0, 0} {
			idx = int32(i)
		}
	}
	if idx < 0 {
		t.Fatal("corner vertex not found")
	}
	n := pn.Vertex(idx)
	want := mesh.Normalize([3]float64{-1, -1, -1})
	if mesh.Norm(mesh.Sub(n, want)) > 1e-12 {
		t.Errorf("corner pseudonormal %v, want %v", n, want)
	}
	// All face normals are unit.
	for tr := range m.Triangles {
		if math.Abs(mesh.Norm(pn.Face(tr))-1) > 1e-12 {
			t.Errorf("face normal %d not unit", tr)
		}
	}
}

func TestNewFieldRejectsOpenMesh(t *testing.T) {
	m := mesh.NewBox(blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}))
	m.Triangles = m.Triangles[:11]
	if _, err := NewField(m); err == nil {
		t.Error("open mesh accepted")
	}
}

// Octree queries must agree exactly with brute force.
func TestOctreeMatchesBruteForce(t *testing.T) {
	m := mesh.NewSphere([3]float64{0.3, -0.2, 0.1}, 0.8, 2)
	tree := NewOctree(m)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := [3]float64{r.Float64()*4 - 2, r.Float64()*4 - 2, r.Float64()*4 - 2}
		_, _, got, _ := tree.Nearest(p)
		best := math.Inf(1)
		for tr := range m.Triangles {
			a, b, c := m.TriangleVertices(tr)
			d, _, _ := PointTriangleDistSq(p, a, b, c)
			if d < best {
				best = d
			}
		}
		if math.Abs(got-best) > 1e-12 {
			t.Fatalf("octree distance^2 %v, brute force %v at %v", got, best, p)
		}
	}
}

func TestOctreeStats(t *testing.T) {
	m := mesh.NewSphere([3]float64{0, 0, 0}, 1, 3) // 1280 triangles
	tree := NewOctree(m)
	nodes, leaves := tree.Stats()
	if nodes < 8 || leaves < 8 {
		t.Errorf("octree did not subdivide: %d nodes, %d leaves", nodes, leaves)
	}
}

func TestClosestTriangleColor(t *testing.T) {
	m := mesh.NewTube([3]float64{0, 0, 0}, [3]float64{0, 0, 4}, 1, 24, mesh.ColorInflow, mesh.ColorOutflow)
	f, err := NewField(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ClosestTriangleColor([3]float64{0, 0, -0.5}); got != mesh.ColorInflow {
		t.Errorf("inflow cap color = %v, want inflow", got)
	}
	if got := f.ClosestTriangleColor([3]float64{0, 0, 4.5}); got != mesh.ColorOutflow {
		t.Errorf("outflow cap color = %v, want outflow", got)
	}
	if got := f.ClosestTriangleColor([3]float64{1.1, 0, 2}); got != mesh.ColorWall {
		t.Errorf("side color = %v, want wall", got)
	}
}

func BenchmarkOctreeNearest(b *testing.B) {
	m := mesh.NewSphere([3]float64{0, 0, 0}, 1, 4)
	tree := NewOctree(m)
	r := rand.New(rand.NewSource(1))
	pts := make([][3]float64, 1024)
	for i := range pts {
		pts[i] = [3]float64{r.Float64()*2 - 1, r.Float64()*2 - 1, r.Float64()*2 - 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(pts[i%len(pts)])
	}
}
