package distance

import (
	"fmt"
	"math"

	"walberla/internal/mesh"
)

// Pseudonormals precomputes, for a watertight mesh, the face normals and
// the angle-weighted pseudonormals of all edges and vertices (Bærentzen
// and Aanæs): the vertex pseudonormal is the sum of the incident face
// normals weighted by the incident angle; the edge pseudonormal is the
// (equal-weight) sum of the two adjacent face normals. The sign of the
// dot product between (p - closestPoint) and the pseudonormal of the
// closest feature is then a numerically reliable inside/outside test.
type Pseudonormals struct {
	m *mesh.Mesh

	face   [][3]float64            // unit face normals
	vertex [][3]float64            // angle-weighted vertex pseudonormals
	edge   map[[2]int32][3]float64 // edge pseudonormals
}

// NewPseudonormals builds the pseudonormal tables. The mesh must be
// watertight with consistent outward winding.
func NewPseudonormals(m *mesh.Mesh) (*Pseudonormals, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := m.CheckWatertight(); err != nil {
		return nil, err
	}
	pn := &Pseudonormals{
		m:      m,
		face:   make([][3]float64, m.TriangleCount()),
		vertex: make([][3]float64, m.VertexCount()),
		edge:   make(map[[2]int32][3]float64, 3*m.TriangleCount()/2),
	}
	for t := range m.Triangles {
		pn.face[t] = m.UnitNormal(t)
	}
	// Vertex pseudonormals: incident-angle weighting.
	for t, tri := range m.Triangles {
		a, b, c := m.TriangleVertices(t)
		pts := [3][3]float64{a, b, c}
		for i := 0; i < 3; i++ {
			p0 := pts[i]
			p1 := pts[(i+1)%3]
			p2 := pts[(i+2)%3]
			e1 := mesh.Normalize(mesh.Sub(p1, p0))
			e2 := mesh.Normalize(mesh.Sub(p2, p0))
			angle := math.Acos(clamp(mesh.Dot(e1, e2), -1, 1))
			pn.vertex[tri[i]] = mesh.Add(pn.vertex[tri[i]], mesh.Scale(pn.face[t], angle))
		}
	}
	for i := range pn.vertex {
		pn.vertex[i] = mesh.Normalize(pn.vertex[i])
	}
	// Edge pseudonormals: sum of the two adjacent face normals.
	for e, ts := range m.EdgeTriangles() {
		if len(ts) != 2 {
			return nil, fmt.Errorf("distance: edge %v shared by %d triangles", e, len(ts))
		}
		pn.edge[e] = mesh.Normalize(mesh.Add(pn.face[ts[0]], pn.face[ts[1]]))
	}
	return pn, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Face returns the unit face normal of triangle t.
func (pn *Pseudonormals) Face(t int) [3]float64 { return pn.face[t] }

// Vertex returns the angle-weighted pseudonormal of vertex v.
func (pn *Pseudonormals) Vertex(v int32) [3]float64 { return pn.vertex[v] }

// Edge returns the pseudonormal of the edge between vertices a and b.
func (pn *Pseudonormals) Edge(a, b int32) [3]float64 {
	if a > b {
		a, b = b, a
	}
	return pn.edge[[2]int32{a, b}]
}

// Normal returns the pseudonormal matching the closest feature of
// triangle t.
func (pn *Pseudonormals) Normal(t int, feat Feature) [3]float64 {
	tri := pn.m.Triangles[t]
	switch feat {
	case FeatureFace:
		return pn.face[t]
	case FeatureEdge0:
		return pn.Edge(tri[0], tri[1])
	case FeatureEdge1:
		return pn.Edge(tri[1], tri[2])
	case FeatureEdge2:
		return pn.Edge(tri[2], tri[0])
	case FeatureVertex0:
		return pn.vertex[tri[0]]
	case FeatureVertex1:
		return pn.vertex[tri[1]]
	case FeatureVertex2:
		return pn.vertex[tri[2]]
	}
	panic(fmt.Sprintf("distance: invalid feature %d", feat))
}
