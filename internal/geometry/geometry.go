// Package geometry implements the initialization-phase geometry stages of
// section 2.3: deciding which blocks intersect the computational domain
// (with circumsphere/insphere early-outs around the block barycenter),
// voxelizing blocks against the signed distance function, computing the
// boundary hull of the fluid cells with a morphological dilation w.r.t.
// the LBM stencil, and assigning boundary conditions from surface colors.
package geometry

import (
	"math"

	"walberla/internal/blockforest"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/mesh"
)

// Classification is the result of testing a region against the domain.
type Classification int

// Region classifications.
const (
	// RegionOutside: no cell center of the region lies inside the domain.
	RegionOutside Classification = iota
	// RegionInside: every cell center of the region lies inside.
	RegionInside
	// RegionIntersecting: the region contains both kinds.
	RegionIntersecting
)

// ClassifyAABB classifies a box of points against the SDF using the
// paper's sphere tests: with c the barycenter, R the circumsphere radius,
// if phi(c) > R the box is entirely outside, if phi(c) < -R entirely
// inside; otherwise it intersects the surface (conservatively).
func ClassifyAABB(sdf distance.SDF, b blockforest.AABB) Classification {
	phi := sdf.Signed(b.Center())
	r := b.CircumsphereRadius()
	if phi > r {
		return RegionOutside
	}
	if phi < -r {
		return RegionInside
	}
	return RegionIntersecting
}

// BlockIntersectsDomain decides whether a block with the given cell grid
// is required by the simulation: true iff the center of any of its lattice
// cells lies within the domain. The test recurses over cell-index octants,
// pruning entire sub-regions with ClassifyAABB, so the number of
// point-surface distance evaluations is far below the cell count.
func BlockIntersectsDomain(sdf distance.SDF, block blockforest.AABB, cells [3]int) bool {
	// Quick whole-block tests on the block box itself (the barycenter /
	// circumsphere / insphere tests of the paper). The distance function
	// is 1-Lipschitz, so phi at the barycenter bounds phi everywhere in
	// the block.
	phi := sdf.Signed(block.Center())
	if phi > block.CircumsphereRadius() {
		return false // every point of the block is outside
	}
	dx := [3]float64{
		(block.Max[0] - block.Min[0]) / float64(cells[0]),
		(block.Max[1] - block.Min[1]) / float64(cells[1]),
		(block.Max[2] - block.Min[2]) / float64(cells[2]),
	}
	cellDiag := 0.5 * math.Sqrt(dx[0]*dx[0]+dx[1]*dx[1]+dx[2]*dx[2])
	if phi < -cellDiag {
		// The barycenter is deeper inside than half a cell diagonal, so
		// the cell center nearest to it is inside as well.
		return true
	}
	return anyCellInside(sdf, block, dx, [3]int{0, 0, 0}, cells)
}

// centerRegion returns the AABB spanned by the cell centers of the index
// range [lo, hi).
func centerRegion(block blockforest.AABB, dx [3]float64, lo, hi [3]int) blockforest.AABB {
	var b blockforest.AABB
	for d := 0; d < 3; d++ {
		b.Min[d] = block.Min[d] + (float64(lo[d])+0.5)*dx[d]
		b.Max[d] = block.Min[d] + (float64(hi[d]-1)+0.5)*dx[d]
	}
	return b
}

func anyCellInside(sdf distance.SDF, block blockforest.AABB, dx [3]float64, lo, hi [3]int) bool {
	nx, ny, nz := hi[0]-lo[0], hi[1]-lo[1], hi[2]-lo[2]
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return false
	}
	region := centerRegion(block, dx, lo, hi)
	switch ClassifyAABB(sdf, region) {
	case RegionOutside:
		return false
	case RegionInside:
		return true
	}
	if nx == 1 && ny == 1 && nz == 1 {
		return sdf.Inside(region.Center())
	}
	// Split the longest axis.
	axis := 0
	if ny > nx {
		axis = 1
	}
	if nz > max(nx, ny) {
		axis = 2
	}
	mid := (lo[axis] + hi[axis]) / 2
	hiA, loB := hi, lo
	hiA[axis] = mid
	loB[axis] = mid
	return anyCellInside(sdf, block, dx, lo, hiA) || anyCellInside(sdf, block, dx, loB, hi)
}

// Voxelize marks the cells of a block's flag field as Fluid or Outside by
// testing cell centers against the SDF — including the ghost ring, whose
// classification the dilation pass and the distributed boundary setup
// need. The same octree-style recursion as the intersection test bulk-
// fills uniform regions.
func Voxelize(sdf distance.SDF, block blockforest.AABB, flags *field.FlagField) {
	g := flags.Ghost
	dx := [3]float64{
		(block.Max[0] - block.Min[0]) / float64(flags.Nx),
		(block.Max[1] - block.Min[1]) / float64(flags.Ny),
		(block.Max[2] - block.Min[2]) / float64(flags.Nz),
	}
	lo := [3]int{-g, -g, -g}
	hi := [3]int{flags.Nx + g, flags.Ny + g, flags.Nz + g}
	voxelizeRegion(sdf, block, dx, flags, lo, hi)
}

func voxelizeRegion(sdf distance.SDF, block blockforest.AABB, dx [3]float64, flags *field.FlagField, lo, hi [3]int) {
	nx, ny, nz := hi[0]-lo[0], hi[1]-lo[1], hi[2]-lo[2]
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return
	}
	region := centerRegion(block, dx, lo, hi)
	switch ClassifyAABB(sdf, region) {
	case RegionOutside:
		fillRegion(flags, lo, hi, field.Outside)
		return
	case RegionInside:
		fillRegion(flags, lo, hi, field.Fluid)
		return
	}
	if nx*ny*nz <= 8 {
		for z := lo[2]; z < hi[2]; z++ {
			for y := lo[1]; y < hi[1]; y++ {
				for x := lo[0]; x < hi[0]; x++ {
					p := cellCenter(block, dx, x, y, z)
					if sdf.Inside(p) {
						flags.Set(x, y, z, field.Fluid)
					} else {
						flags.Set(x, y, z, field.Outside)
					}
				}
			}
		}
		return
	}
	axis := 0
	if ny > nx {
		axis = 1
	}
	if nz > max(nx, ny) {
		axis = 2
	}
	mid := (lo[axis] + hi[axis]) / 2
	hiA, loB := hi, lo
	hiA[axis] = mid
	loB[axis] = mid
	voxelizeRegion(sdf, block, dx, flags, lo, hiA)
	voxelizeRegion(sdf, block, dx, flags, loB, hi)
}

func fillRegion(flags *field.FlagField, lo, hi [3]int, c field.CellType) {
	for z := lo[2]; z < hi[2]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			for x := lo[0]; x < hi[0]; x++ {
				flags.Set(x, y, z, c)
			}
		}
	}
}

func cellCenter(block blockforest.AABB, dx [3]float64, x, y, z int) [3]float64 {
	return [3]float64{
		block.Min[0] + (float64(x)+0.5)*dx[0],
		block.Min[1] + (float64(y)+0.5)*dx[1],
		block.Min[2] + (float64(z)+0.5)*dx[2],
	}
}

// BoundaryTypeFromColor maps a surface color to the boundary condition it
// encodes: inflow surfaces impose a velocity, outflow surfaces a pressure,
// everything else is a no-slip wall.
func BoundaryTypeFromColor(c mesh.Color) field.CellType {
	switch c {
	case mesh.ColorInflow:
		return field.VelocityBounce
	case mesh.ColorOutflow:
		return field.PressureBounce
	default:
		return field.NoSlip
	}
}

// DilateBoundary computes the hull of the fluid cells with a morphological
// dilation w.r.t. the stencil: every Outside cell (interior or ghost)
// reachable from a fluid cell along a stencil direction becomes a boundary
// cell whose condition is taken from the color of the closest surface
// triangle. Returns the number of boundary cells created.
func DilateBoundary(sdf distance.SDF, block blockforest.AABB, flags *field.FlagField, s *lattice.Stencil) int {
	g := flags.Ghost
	dx := [3]float64{
		(block.Max[0] - block.Min[0]) / float64(flags.Nx),
		(block.Max[1] - block.Min[1]) / float64(flags.Ny),
		(block.Max[2] - block.Min[2]) / float64(flags.Nz),
	}
	created := 0
	for z := -g; z < flags.Nz+g; z++ {
		for y := -g; y < flags.Ny+g; y++ {
			for x := -g; x < flags.Nx+g; x++ {
				if flags.Get(x, y, z) != field.Outside {
					continue
				}
				adjacent := false
				for a := 0; a < s.Q && !adjacent; a++ {
					cx, cy, cz := s.Cx[a], s.Cy[a], s.Cz[a]
					if cx == 0 && cy == 0 && cz == 0 {
						continue
					}
					nx, ny, nz := x+cx, y+cy, z+cz
					if nx < -g || nx >= flags.Nx+g || ny < -g || ny >= flags.Ny+g || nz < -g || nz >= flags.Nz+g {
						continue
					}
					if flags.Get(nx, ny, nz) == field.Fluid {
						adjacent = true
					}
				}
				if !adjacent {
					continue
				}
				color := sdf.ClosestTriangleColor(cellCenter(block, dx, x, y, z))
				flags.Set(x, y, z, BoundaryTypeFromColor(color))
				created++
			}
		}
	}
	return created
}
