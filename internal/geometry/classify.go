package geometry

import (
	"math/rand"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/distance"
)

// ClassifyBlocksParallel performs the hybrid-parallel block classification
// of section 2.3: all candidate blocks are randomly scattered among the
// ranks (avoiding load imbalance from spatial clustering of the surface),
// each rank evaluates the block-domain intersection test for its share,
// and the result is gathered on all ranks. It returns, on every rank, the
// set of block coordinates required by the simulation.
//
// The surface description is shared in-process (the paper broadcasts the
// mesh once at startup); the evaluation work is genuinely distributed.
func ClassifyBlocksParallel(c *comm.Comm, sdf distance.SDF, f *blockforest.SetupForest, seed int64) map[[3]int]bool {
	blocks := f.Blocks()
	// Deterministic random scatter, identical on every rank.
	perm := rand.New(rand.NewSource(seed)).Perm(len(blocks))
	var mine []int32 // indices into blocks kept by this rank's evaluation
	for i, b := range blocks {
		if perm[i]%c.Size() != c.Rank() {
			continue
		}
		if BlockIntersectsDomain(sdf, b.AABB, f.CellsPerBlock) {
			mine = append(mine, int32(i))
		}
	}
	gathered := c.Allgather(mine)
	keep := make(map[[3]int]bool)
	for _, part := range gathered {
		if part == nil {
			continue
		}
		for _, idx := range part.([]int32) {
			keep[blocks[idx].Coord] = true
		}
	}
	return keep
}

// ApplyClassification removes from the forest every block not contained in
// keep, returning the number of discarded blocks.
func ApplyClassification(f *blockforest.SetupForest, keep map[[3]int]bool) int {
	return f.Keep(func(b *blockforest.SetupBlock) bool { return keep[b.Coord] })
}
