package geometry

import (
	"math"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/mesh"
)

func sphereSDF(t *testing.T, center [3]float64, r float64) *distance.Field {
	t.Helper()
	f, err := distance.NewField(mesh.NewSphere(center, r, 3))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func boxSDF(t *testing.T, b blockforest.AABB) *distance.Field {
	t.Helper()
	f, err := distance.NewField(mesh.NewBox(b))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestClassifyAABB(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0, 0, 0}, 1)
	inside := blockforest.NewAABB([3]float64{-0.1, -0.1, -0.1}, [3]float64{0.1, 0.1, 0.1})
	if ClassifyAABB(sdf, inside) != RegionInside {
		t.Error("small central box not classified inside")
	}
	outside := blockforest.NewAABB([3]float64{2, 2, 2}, [3]float64{2.1, 2.1, 2.1})
	if ClassifyAABB(sdf, outside) != RegionOutside {
		t.Error("far box not classified outside")
	}
	straddle := blockforest.NewAABB([3]float64{0.9, -0.1, -0.1}, [3]float64{1.1, 0.1, 0.1})
	if ClassifyAABB(sdf, straddle) != RegionIntersecting {
		t.Error("straddling box not classified intersecting")
	}
}

func TestBlockIntersectsDomain(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.3)
	cells := [3]int{8, 8, 8}
	cases := []struct {
		b    blockforest.AABB
		want bool
	}{
		{blockforest.NewAABB([3]float64{0.4, 0.4, 0.4}, [3]float64{0.6, 0.6, 0.6}), true},   // inside sphere
		{blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}), true},               // contains sphere
		{blockforest.NewAABB([3]float64{2, 2, 2}, [3]float64{3, 3, 3}), false},              // far away
		{blockforest.NewAABB([3]float64{0.75, 0.4, 0.4}, [3]float64{0.95, 0.6, 0.6}), true}, // clips the side
		{blockforest.NewAABB([3]float64{0.85, 0.85, 0.85}, [3]float64{1, 1, 1}), false},     // near but outside
	}
	for i, tc := range cases {
		if got := BlockIntersectsDomain(sdf, tc.b, cells); got != tc.want {
			t.Errorf("case %d: intersects = %v, want %v", i, got, tc.want)
		}
	}
}

// The recursive voxelization must agree exactly with the brute-force
// cell-by-cell test.
func TestVoxelizeMatchesBruteForce(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.35)
	block := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	const n = 16
	flags := field.NewFlagField(n, n, n, 1)
	Voxelize(sdf, block, flags)
	dx := 1.0 / n
	for z := -1; z < n+1; z++ {
		for y := -1; y < n+1; y++ {
			for x := -1; x < n+1; x++ {
				p := [3]float64{(float64(x) + 0.5) * dx, (float64(y) + 0.5) * dx, (float64(z) + 0.5) * dx}
				want := field.Outside
				if sdf.Inside(p) {
					want = field.Fluid
				}
				if got := flags.Get(x, y, z); got != want {
					t.Fatalf("cell (%d,%d,%d): %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestVoxelizeSphereVolume(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.4)
	block := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	const n = 32
	flags := field.NewFlagField(n, n, n, 1)
	Voxelize(sdf, block, flags)
	gotFrac := flags.FluidFraction()
	wantFrac := 4.0 / 3.0 * math.Pi * 0.4 * 0.4 * 0.4
	if math.Abs(gotFrac-wantFrac) > 0.03 {
		t.Errorf("fluid fraction %v, want ~%v", gotFrac, wantFrac)
	}
}

func TestDilateBoundary(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.3)
	block := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	const n = 16
	flags := field.NewFlagField(n, n, n, 1)
	Voxelize(sdf, block, flags)
	created := DilateBoundary(sdf, block, flags, lattice.D3Q19())
	if created == 0 {
		t.Fatal("no boundary cells created")
	}
	// Every fluid cell's stencil neighbors are fluid or boundary — the
	// invariant the kernels rely on (no pull from Outside).
	s := lattice.D3Q19()
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if flags.Get(x, y, z) != field.Fluid {
					continue
				}
				for a := 1; a < s.Q; a++ {
					nx, ny, nz := x+s.Cx[a], y+s.Cy[a], z+s.Cz[a]
					ct := flags.Get(nx, ny, nz)
					if ct != field.Fluid && !ct.IsBoundary() {
						t.Fatalf("fluid cell (%d,%d,%d) has %v neighbor", x, y, z, ct)
					}
				}
			}
		}
	}
	// Every boundary cell is adjacent to at least one fluid cell.
	g := flags.Ghost
	for z := -g; z < n+g; z++ {
		for y := -g; y < n+g; y++ {
			for x := -g; x < n+g; x++ {
				if !flags.Get(x, y, z).IsBoundary() {
					continue
				}
				found := false
				for a := 1; a < s.Q && !found; a++ {
					nx, ny, nz := x+s.Cx[a], y+s.Cy[a], z+s.Cz[a]
					if nx < -g || nx >= n+g || ny < -g || ny >= n+g || nz < -g || nz >= n+g {
						continue
					}
					if flags.Get(nx, ny, nz) == field.Fluid {
						found = true
					}
				}
				if !found {
					t.Fatalf("boundary cell (%d,%d,%d) has no fluid neighbor", x, y, z)
				}
			}
		}
	}
	// An all-wall sphere yields only NoSlip boundary cells.
	for z := -g; z < n+g; z++ {
		for y := -g; y < n+g; y++ {
			for x := -g; x < n+g; x++ {
				if ct := flags.Get(x, y, z); ct.IsBoundary() && ct != field.NoSlip {
					t.Fatalf("unexpected boundary type %v", ct)
				}
			}
		}
	}
}

func TestBoundaryTypesFromColoredTube(t *testing.T) {
	// A tube along z with colored caps: the dilated hull must contain
	// velocity cells near the inlet, pressure cells near the outlet.
	tube, err := distance.NewField(mesh.NewTube(
		[3]float64{0.5, 0.5, 0.1}, [3]float64{0.5, 0.5, 0.9}, 0.2, 16,
		mesh.ColorInflow, mesh.ColorOutflow))
	if err != nil {
		t.Fatal(err)
	}
	block := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	const n = 24
	flags := field.NewFlagField(n, n, n, 1)
	Voxelize(tube, block, flags)
	DilateBoundary(tube, block, flags, lattice.D3Q19())
	if flags.Count(field.Fluid) == 0 {
		t.Fatal("tube produced no fluid cells")
	}
	counts := map[field.CellType]int{}
	g := flags.Ghost
	for z := -g; z < n+g; z++ {
		for y := -g; y < n+g; y++ {
			for x := -g; x < n+g; x++ {
				ct := flags.Get(x, y, z)
				if ct.IsBoundary() {
					counts[ct]++
				}
			}
		}
	}
	if counts[field.VelocityBounce] == 0 {
		t.Error("no velocity (inflow) boundary cells")
	}
	if counts[field.PressureBounce] == 0 {
		t.Error("no pressure (outflow) boundary cells")
	}
	if counts[field.NoSlip] == 0 {
		t.Error("no wall boundary cells")
	}
	if counts[field.NoSlip] <= counts[field.VelocityBounce] {
		t.Error("wall cells should dominate for a tube")
	}
}

func TestBoundaryTypeFromColor(t *testing.T) {
	if BoundaryTypeFromColor(mesh.ColorInflow) != field.VelocityBounce ||
		BoundaryTypeFromColor(mesh.ColorOutflow) != field.PressureBounce ||
		BoundaryTypeFromColor(mesh.ColorWall) != field.NoSlip ||
		BoundaryTypeFromColor(mesh.Color{R: 7, G: 7, B: 7}) != field.NoSlip {
		t.Error("color mapping wrong")
	}
}

// Parallel classification must keep exactly the blocks the serial test
// keeps, for any rank count.
func TestClassifyBlocksParallel(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.3)
	for _, ranks := range []int{1, 3, 8} {
		f := blockforest.NewSetupForest(
			blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
			[3]int{4, 4, 4}, [3]int{8, 8, 8}, [3]bool{})
		// Serial truth.
		truth := map[[3]int]bool{}
		for _, b := range f.Blocks() {
			if BlockIntersectsDomain(sdf, b.AABB, f.CellsPerBlock) {
				truth[b.Coord] = true
			}
		}
		comm.Run(ranks, func(c *comm.Comm) {
			keep := ClassifyBlocksParallel(c, sdf, f, 42)
			if len(keep) != len(truth) {
				t.Errorf("ranks=%d rank=%d: kept %d blocks, want %d", ranks, c.Rank(), len(keep), len(truth))
				return
			}
			for coord := range truth {
				if !keep[coord] {
					t.Errorf("ranks=%d: block %v missing", ranks, coord)
				}
			}
		})
		removed := ApplyClassification(f, truth)
		if f.NumBlocks() != len(truth) {
			t.Errorf("ApplyClassification left %d blocks, want %d (removed %d)", f.NumBlocks(), len(truth), removed)
		}
	}
}

// A sparse geometry must discard most blocks — the premise of the paper's
// block-based approach to vascular geometries.
func TestSparseGeometryDiscardsBlocks(t *testing.T) {
	sdf := sphereSDF(t, [3]float64{0.5, 0.5, 0.5}, 0.15)
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{8, 8, 8}, [3]int{8, 8, 8}, [3]bool{})
	truth := map[[3]int]bool{}
	for _, b := range f.Blocks() {
		if BlockIntersectsDomain(sdf, b.AABB, f.CellsPerBlock) {
			truth[b.Coord] = true
		}
	}
	ApplyClassification(f, truth)
	if f.NumBlocks() >= 128 {
		t.Errorf("sphere of 1.5/8 radius kept %d of 512 blocks, expected far fewer", f.NumBlocks())
	}
	if f.NumBlocks() == 0 {
		t.Error("all blocks discarded")
	}
}
