// Package netmodel provides analytic models of the two interconnects of
// section 3: JUQUEEN's 5-dimensional torus (nearest-neighbor bandwidth
// independent of machine size, sub-microsecond to 2.6 us latency) and
// SuperMUC's island topology (non-blocking fat tree within an island of
// 8192 cores, islands connected 4:1 pruned). The scaling projections use
// these models to estimate the per-step ghost layer communication time;
// the paper's expectation — torus communication scales to the full
// machine, the pruned tree costs parallel efficiency beyond one island —
// emerges from the topology parameters.
package netmodel

import "math"

// Network estimates per-step ghost exchange time for one node.
type Network interface {
	Name() string
	// CommTime returns the seconds one node spends exchanging ghost
	// layers in one time step, given the total core count of the run, the
	// bytes leaving the node, the bytes exchanged between processes within
	// the node (through MPI shared memory in a pure-MPI configuration),
	// and the number of off-node messages.
	CommTime(totalCores int, offNodeBytes, intraNodeBytes float64, offNodeMessages int) float64
}

// Torus models a BG/Q-style n-dimensional torus: every node has dedicated
// links to its neighbors, so nearest-neighbor ghost exchange bandwidth is
// independent of the machine size.
type Torus struct {
	// NetName names the network.
	NetName string
	// LinkBandwidth is the aggregate nearest-neighbor bandwidth of one
	// node in bytes/s usable by the ghost exchange.
	LinkBandwidth float64
	// BaseLatency is the per-message software+hardware latency in
	// seconds.
	BaseLatency float64
	// HopLatency is the added latency per torus hop; nearest-neighbor
	// partitions see one hop.
	HopLatency float64
	// IntraNodeBandwidth is the effective bandwidth of MPI messages
	// between ranks on the same node (memory copies).
	IntraNodeBandwidth float64
	// CoresPerNode converts the run's core count into the torus node
	// count.
	CoresPerNode int
	// HopBandwidthPenalty models link sharing with pass-through traffic
	// as the partition grows: the effective neighbor bandwidth shrinks by
	// 1 + penalty*(meanHops-1), with meanHops = nodes^(1/dims).
	HopBandwidthPenalty float64
	// Dims is the torus dimensionality (5 on BG/Q).
	Dims int
}

// JUQUEENTorus returns the 5-D torus model of JUQUEEN: 40 GB/s of torus
// links per node of which a nearest-neighbor exchange drives a fraction,
// latencies of a few hundred nanoseconds up to 2.6 us.
func JUQUEENTorus() *Torus {
	return &Torus{
		NetName:             "JUQUEEN 5-D torus",
		LinkBandwidth:       4.0e9, // sustained neighbor-exchange share of 40 GB/s
		BaseLatency:         2.0e-6,
		HopLatency:          0.6e-6,
		IntraNodeBandwidth:  6.0e9,
		CoresPerNode:        16,
		HopBandwidthPenalty: 0.9,
		Dims:                5,
	}
}

// meanHops estimates the average distance between communicating partners
// mapped onto the torus: near one for small partitions, growing with the
// partition's extent per torus dimension.
func (t *Torus) meanHops(totalCores int) float64 {
	nodes := 1.0
	if t.CoresPerNode > 0 {
		nodes = float64(totalCores) / float64(t.CoresPerNode)
	}
	if nodes < 1 {
		nodes = 1
	}
	dims := t.Dims
	if dims <= 0 {
		dims = 5
	}
	return math.Pow(nodes, 1.0/float64(dims))
}

// Name implements Network.
func (t *Torus) Name() string { return t.NetName }

// CommTime implements Network: torus neighbor exchange degrades only
// mildly with machine size — links are shared with pass-through traffic of
// the growing partition, but there is no island knee.
func (t *Torus) CommTime(totalCores int, offNodeBytes, intraNodeBytes float64, offNodeMessages int) float64 {
	hops := t.meanHops(totalCores)
	latency := float64(offNodeMessages) * (t.BaseLatency + t.HopLatency*hops)
	penalty := 1.0 + t.HopBandwidthPenalty*(hops-1)
	return latency + offNodeBytes*penalty/t.LinkBandwidth + intraNodeBytes/t.IntraNodeBandwidth
}

// IslandTree models SuperMUC's network: islands of IslandCores cores with
// a non-blocking tree inside, joined by a PruneFactor:1 pruned tree. Once
// a run spans several islands, the fraction of ghost traffic crossing
// island boundaries contends for the pruned links.
type IslandTree struct {
	NetName string
	// IslandCores is the island size (SuperMUC: 512 nodes x 16 = 8192).
	IslandCores int
	// PruneFactor is the oversubscription of inter-island links (4).
	PruneFactor float64
	// NodeBandwidth is the per-node injection bandwidth into the tree.
	NodeBandwidth float64
	// BaseLatency per message within an island; crossing islands adds
	// ExtraHopLatency.
	BaseLatency     float64
	ExtraHopLatency float64
	// IntraNodeBandwidth for same-node MPI messages.
	IntraNodeBandwidth float64
	// CrossFractionCap bounds the asymptotic fraction of traffic that
	// crosses islands for a compact 3-D domain decomposition.
	CrossFractionCap float64
}

// SuperMUCNetwork returns the island/pruned-tree model of SuperMUC.
func SuperMUCNetwork() *IslandTree {
	return &IslandTree{
		NetName:            "SuperMUC islands (4:1 pruned tree)",
		IslandCores:        8192,
		PruneFactor:        5,     // 4:1 pruning plus sharing contention
		NodeBandwidth:      1.2e9, // FDR10 injection share for the exchange
		BaseLatency:        2.5e-6,
		ExtraHopLatency:    2.5e-6,
		IntraNodeBandwidth: 8.0e9,
		CrossFractionCap:   0.55,
	}
}

// Name implements Network.
func (n *IslandTree) Name() string { return n.NetName }

// crossFraction estimates the share of off-node traffic that crosses
// island boundaries: zero within one island, approaching the cap as the
// island subdomains' surface-to-volume ratio saturates.
func (n *IslandTree) crossFraction(totalCores int) float64 {
	if totalCores <= n.IslandCores {
		return 0
	}
	ratio := float64(n.IslandCores) / float64(totalCores)
	return n.CrossFractionCap * (1 - math.Cbrt(ratio))
}

// CommTime implements Network.
func (n *IslandTree) CommTime(totalCores int, offNodeBytes, intraNodeBytes float64, offNodeMessages int) float64 {
	f := n.crossFraction(totalCores)
	latency := float64(offNodeMessages) * (n.BaseLatency + f*n.ExtraHopLatency)
	// Traffic crossing islands is slowed by the pruning factor (the
	// pruned links are shared by the whole island's crossing traffic).
	transfer := offNodeBytes * ((1-f)/n.NodeBandwidth + f*n.PruneFactor/n.NodeBandwidth)
	return latency + transfer + intraNodeBytes/n.IntraNodeBandwidth
}
