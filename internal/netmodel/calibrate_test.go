package netmodel

import (
	"math"
	"testing"
)

func TestFitLatencyBandwidthRecoversModel(t *testing.T) {
	const lat, bw = 12e-6, 2.5e9
	var bytes, secs []float64
	for _, m := range []float64{64, 1024, 65536, 1 << 20, 8 << 20} {
		bytes = append(bytes, m)
		secs = append(secs, lat+m/bw)
	}
	gotLat, gotBW, err := FitLatencyBandwidth(bytes, secs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotLat-lat)/lat > 1e-6 {
		t.Errorf("latency = %g, want %g", gotLat, lat)
	}
	if math.Abs(gotBW-bw)/bw > 1e-6 {
		t.Errorf("bandwidth = %g, want %g", gotBW, bw)
	}
}

func TestFitLatencyBandwidthNoisy(t *testing.T) {
	// Deterministic +/-5% wobble must not throw the fit off by more than
	// a few percent on a well-spread size range.
	const lat, bw = 20e-6, 1e9
	var bytes, secs []float64
	for i, m := range []float64{256, 4096, 65536, 1 << 20, 4 << 20, 16 << 20} {
		noise := 1 + 0.05*math.Cos(float64(3*i))
		bytes = append(bytes, m)
		secs = append(secs, (lat+m/bw)*noise)
	}
	gotLat, gotBW, err := FitLatencyBandwidth(bytes, secs)
	if err != nil {
		t.Fatal(err)
	}
	if gotLat <= 0 || math.Abs(gotBW-bw)/bw > 0.15 {
		t.Errorf("noisy fit: latency %g bandwidth %g, want ~%g/%g", gotLat, gotBW, lat, bw)
	}
}

func TestFitLatencyBandwidthRejectsDegenerate(t *testing.T) {
	if _, _, err := FitLatencyBandwidth([]float64{8}, []float64{1e-6}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := FitLatencyBandwidth([]float64{8, 8, 8}, []float64{1e-6, 2e-6, 3e-6}); err == nil {
		t.Error("constant sizes accepted")
	}
	if _, _, err := FitLatencyBandwidth([]float64{8, 1024}, []float64{2e-6, 1e-6}); err == nil {
		t.Error("negative slope accepted")
	}
	if _, _, err := FitLatencyBandwidth([]float64{8, 16}, []float64{1e-6}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCalibratedCommTime(t *testing.T) {
	c := &Calibrated{NetName: "unix", Latency: 10e-6, Bandwidth: 1e9, IntraNodeBandwidth: 4e9}
	if c.Name() != "unix" {
		t.Errorf("name %q", c.Name())
	}
	got := c.CommTime(32, 1e6, 4e6, 10)
	want := 10*10e-6 + 1e6/1e9 + 4e6/4e9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", got, want)
	}
	// Zero intra-node bandwidth falls back to the wire bandwidth.
	c.IntraNodeBandwidth = 0
	got = c.CommTime(32, 0, 1e6, 0)
	if math.Abs(got-1e6/1e9) > 1e-12 {
		t.Errorf("fallback CommTime = %g", got)
	}
}
