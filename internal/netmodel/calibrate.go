package netmodel

import (
	"fmt"
	"math"
)

// Calibration against a real transport: the socket backend of
// internal/comm gives the repository a wire with genuine per-message
// latency and finite bandwidth, so the analytic models above can be
// anchored to measured numbers instead of literature values. The bench
// harness measures round-trip times across message sizes and fits the
// classic postal model t(m) = latency + m/bandwidth; the resulting
// Calibrated network plugs into the same projections as the JUQUEEN and
// SuperMUC models.

// FitLatencyBandwidth fits t(m) = latency + m/bandwidth to measured
// (bytes, seconds) samples by least squares. It returns the per-message
// latency in seconds and the bandwidth in bytes/s. At least two samples
// with distinct sizes are required; a non-positive fitted slope (faster
// transfers for bigger messages — measurement noise) is rejected.
func FitLatencyBandwidth(bytes, seconds []float64) (latency, bandwidth float64, err error) {
	if len(bytes) != len(seconds) {
		return 0, 0, fmt.Errorf("netmodel: %d sizes vs %d times", len(bytes), len(seconds))
	}
	if len(bytes) < 2 {
		return 0, 0, fmt.Errorf("netmodel: need at least 2 samples, got %d", len(bytes))
	}
	n := float64(len(bytes))
	var mx, mt float64
	for i := range bytes {
		mx += bytes[i]
		mt += seconds[i]
	}
	mx /= n
	mt /= n
	var sxx, sxt float64
	for i := range bytes {
		dx := bytes[i] - mx
		sxx += dx * dx
		sxt += dx * (seconds[i] - mt)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("netmodel: all %d samples share one message size", len(bytes))
	}
	slope := sxt / sxx
	if slope <= 0 || math.IsNaN(slope) {
		return 0, 0, fmt.Errorf("netmodel: non-positive fitted slope %g — samples too noisy", slope)
	}
	latency = mt - slope*mx
	if latency < 0 {
		// Tiny negative intercepts happen when the latency is below the
		// timer resolution; clamp rather than report an impossible value.
		latency = 0
	}
	return latency, 1 / slope, nil
}

// Calibrated is a Network whose parameters came from measurements on a
// real transport (FitLatencyBandwidth) rather than from an analytic
// topology model. It deliberately has no topology term: it represents
// the flat point-to-point cost of the measured wire.
type Calibrated struct {
	// NetName names the measured transport (e.g. "unix", "tcp").
	NetName string
	// Latency is the per-message cost in seconds.
	Latency float64
	// Bandwidth is the sustained point-to-point bandwidth in bytes/s.
	Bandwidth float64
	// IntraNodeBandwidth is the bandwidth of same-node traffic; zero means
	// intra-node messages ride the measured wire too (the socket backend's
	// reality on one host).
	IntraNodeBandwidth float64
}

// Name implements Network.
func (c *Calibrated) Name() string { return c.NetName }

// CommTime implements Network with the fitted postal model.
func (c *Calibrated) CommTime(totalCores int, offNodeBytes, intraNodeBytes float64, offNodeMessages int) float64 {
	t := float64(offNodeMessages)*c.Latency + offNodeBytes/c.Bandwidth
	if intraNodeBytes > 0 {
		bw := c.IntraNodeBandwidth
		if bw <= 0 {
			bw = c.Bandwidth
		}
		t += intraNodeBytes / bw
	}
	return t
}
