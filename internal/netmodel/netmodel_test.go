package netmodel

import "testing"

// Torus exchange time must grow only mildly with machine size — no knee,
// bounded degradation (the paper's expectation that LBM communication
// scales to the full machine).
func TestTorusNearScaleInvariance(t *testing.T) {
	n := JUQUEENTorus()
	small := n.CommTime(1024, 20e6, 60e6, 26)
	large := n.CommTime(458752, 20e6, 60e6, 26)
	if small <= 0 {
		t.Fatalf("degenerate comm time %v", small)
	}
	if large <= small {
		t.Errorf("no growth at all: %v vs %v", small, large)
	}
	if large > 6*small {
		t.Errorf("torus comm grows too much: %v vs %v", small, large)
	}
	// Monotone, smooth (no knee: the growth between successive doublings
	// never jumps).
	prev := small
	prevGrowth := 0.0
	for cores := 2048; cores <= 458752; cores *= 2 {
		cur := n.CommTime(cores, 20e6, 60e6, 26)
		growth := cur - prev
		if growth < 0 {
			t.Errorf("comm time decreased at %d cores", cores)
		}
		if prevGrowth > 0 && growth > 3*prevGrowth {
			t.Errorf("knee-like jump at %d cores: %v after %v", cores, growth, prevGrowth)
		}
		prev, prevGrowth = cur, growth
	}
}

func TestTorusComponents(t *testing.T) {
	n := JUQUEENTorus()
	latencyOnly := n.CommTime(16, 0, 0, 10)
	if latencyOnly != 10*(n.BaseLatency+n.HopLatency) {
		t.Errorf("latency component = %v", latencyOnly)
	}
	withBytes := n.CommTime(16, n.LinkBandwidth, 0, 0)
	if withBytes != 1.0 {
		t.Errorf("bandwidth component = %v, want 1s", withBytes)
	}
}

// Within one island the tree is non-blocking: time constant. Beyond the
// island boundary communication gets strictly slower and keeps degrading,
// approaching an asymptote.
func TestIslandKnee(t *testing.T) {
	n := SuperMUCNetwork()
	within1 := n.CommTime(2048, 5e6, 10e6, 26)
	within2 := n.CommTime(8192, 5e6, 10e6, 26)
	if within1 != within2 {
		t.Errorf("comm time varies within an island: %v vs %v", within1, within2)
	}
	prev := within2
	for _, cores := range []int{16384, 32768, 65536, 131072} {
		cur := n.CommTime(cores, 5e6, 10e6, 26)
		if cur <= prev {
			t.Errorf("comm time at %d cores (%v) not above previous (%v)", cores, cur, prev)
		}
		prev = cur
	}
	// The degradation is bounded: even the full machine stays below the
	// fully pruned worst case.
	worst := n.CommTime(1<<30, 5e6, 10e6, 26)
	fullPruned := float64(26)*(n.BaseLatency+n.ExtraHopLatency) + 5e6*n.PruneFactor/n.NodeBandwidth + 10e6/n.IntraNodeBandwidth
	if worst >= fullPruned {
		t.Errorf("asymptotic comm time %v exceeds fully pruned bound %v", worst, fullPruned)
	}
}

func TestCrossFraction(t *testing.T) {
	n := SuperMUCNetwork()
	if f := n.crossFraction(8192); f != 0 {
		t.Errorf("cross fraction within island = %v", f)
	}
	f16k := n.crossFraction(16384)
	f128k := n.crossFraction(131072)
	if !(f16k > 0 && f128k > f16k && f128k < n.CrossFractionCap) {
		t.Errorf("cross fractions implausible: %v, %v (cap %v)", f16k, f128k, n.CrossFractionCap)
	}
}

// Fewer, larger processes per node (hybrid MPI/OpenMP) exchange fewer
// intra-node bytes; the model must reward that.
func TestHybridIntraNodeSavings(t *testing.T) {
	n := SuperMUCNetwork()
	pure := n.CommTime(4096, 5e6, 16e6, 26*16)
	hybrid := n.CommTime(4096, 5e6, 4e6, 26*2)
	if hybrid >= pure {
		t.Errorf("hybrid comm %v not below pure MPI %v", hybrid, pure)
	}
}

func TestNames(t *testing.T) {
	if JUQUEENTorus().Name() == "" || SuperMUCNetwork().Name() == "" {
		t.Error("empty network names")
	}
}
