package collide

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"walberla/internal/lattice"
)

func randomPDFs(r *rand.Rand, q int) []float64 {
	f := make([]float64, q)
	for a := range f {
		f[a] = 0.02 + 0.1*r.Float64()
	}
	return f
}

func TestSRTConstruction(t *testing.T) {
	o := NewSRT(0.9)
	if o.Tau != 0.9 {
		t.Errorf("Tau = %v, want 0.9", o.Tau)
	}
	if math.Abs(o.Omega()-1.0/0.9) > 1e-15 {
		t.Errorf("Omega = %v, want %v", o.Omega(), 1.0/0.9)
	}
	nu := o.Viscosity()
	o2 := NewSRTFromViscosity(nu)
	if math.Abs(o2.Tau-0.9) > 1e-14 {
		t.Errorf("viscosity round trip tau = %v, want 0.9", o2.Tau)
	}
}

func TestSRTPanicsOnUnstableTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSRT(0.5) did not panic")
		}
	}()
	NewSRT(0.5)
}

func TestTRTPanicsOnUnstableTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTRT(0.4, ...) did not panic")
		}
	}()
	NewTRT(0.4, MagicParameter)
}

// Collision must conserve mass and momentum exactly (they are collision
// invariants of both operators).
func TestCollisionInvariants(t *testing.T) {
	s := lattice.D3Q19()
	r := rand.New(rand.NewSource(1))
	ops := []Operator{NewSRT(0.8), NewSRT(1.9), NewTRT(0.8, MagicParameter), NewTRT(1.2, 0.25)}
	for _, op := range ops {
		for trial := 0; trial < 50; trial++ {
			f := randomPDFs(r, s.Q)
			rho0, ux0, uy0, uz0 := s.Moments(f)
			op.Collide(s, f)
			rho1, ux1, uy1, uz1 := s.Moments(f)
			if math.Abs(rho1-rho0) > 1e-13 {
				t.Fatalf("%s: mass not conserved: %v -> %v", op.Name(), rho0, rho1)
			}
			if math.Abs(ux1-ux0) > 1e-12 || math.Abs(uy1-uy0) > 1e-12 || math.Abs(uz1-uz0) > 1e-12 {
				t.Fatalf("%s: momentum not conserved", op.Name())
			}
		}
	}
}

// Equilibrium is a fixed point of collision.
func TestEquilibriumFixedPoint(t *testing.T) {
	s := lattice.D3Q19()
	ops := []Operator{NewSRT(0.7), NewTRT(0.7, MagicParameter)}
	for _, op := range ops {
		f := make([]float64, s.Q)
		s.Equilibrium(f, 1.1, 0.03, -0.02, 0.01)
		want := append([]float64(nil), f...)
		op.Collide(s, f)
		for a := range f {
			if math.Abs(f[a]-want[a]) > 1e-14 {
				t.Errorf("%s: equilibrium not a fixed point at %d: %v vs %v", op.Name(), a, f[a], want[a])
			}
		}
	}
}

// TRT with lambdaE == lambdaO == -1/tau must reproduce SRT exactly
// (equation (8) of the paper).
func TestTRTReducesToSRT(t *testing.T) {
	s := lattice.D3Q19()
	tau := 0.83
	srt := NewSRT(tau)
	trt := TRT{LambdaE: -1.0 / tau, LambdaO: -1.0 / tau}
	if gotTau, ok := trt.EquivalentSRT(); !ok || math.Abs(gotTau-tau) > 1e-14 {
		t.Fatalf("EquivalentSRT = (%v, %v), want (%v, true)", gotTau, ok, tau)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		f1 := randomPDFs(r, s.Q)
		f2 := append([]float64(nil), f1...)
		srt.Collide(s, f1)
		trt.Collide(s, f2)
		for a := range f1 {
			if math.Abs(f1[a]-f2[a]) > 1e-13 {
				t.Fatalf("TRT(l,l) != SRT at direction %d: %v vs %v", a, f1[a], f2[a])
			}
		}
	}
}

func TestTRTMagicParameter(t *testing.T) {
	for _, tau := range []float64{0.6, 0.9, 1.7} {
		for _, magic := range []float64{MagicParameter, 0.25, 1.0 / 12.0} {
			o := NewTRT(tau, magic)
			if math.Abs(o.Magic()-magic) > 1e-12 {
				t.Errorf("tau=%v: Magic() = %v, want %v", tau, o.Magic(), magic)
			}
			if math.Abs(o.Viscosity()-(tau-0.5)/3.0) > 1e-14 {
				t.Errorf("tau=%v: viscosity %v, want %v", tau, o.Viscosity(), (tau-0.5)/3.0)
			}
		}
	}
}

func TestTRTNotEquivalentSRT(t *testing.T) {
	o := NewTRT(0.9, MagicParameter)
	if _, ok := o.EquivalentSRT(); ok {
		t.Error("TRT with magic parameter should not reduce to SRT for tau != 1")
	}
}

// Property: collision is a contraction toward equilibrium — the distance
// to equilibrium never grows for stable relaxation parameters.
func TestCollisionContractsTowardEquilibrium(t *testing.T) {
	s := lattice.D3Q19()
	check := func(op Operator) func(seed int64) bool {
		return func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			f := randomPDFs(r, s.Q)
			rho, ux, uy, uz := s.Moments(f)
			feq := make([]float64, s.Q)
			s.Equilibrium(feq, rho, ux, uy, uz)
			var before float64
			for a := range f {
				before += (f[a] - feq[a]) * (f[a] - feq[a])
			}
			op.Collide(s, f)
			// Moments unchanged, so equilibrium is unchanged too.
			var after float64
			for a := range f {
				after += (f[a] - feq[a]) * (f[a] - feq[a])
			}
			return after <= before+1e-13
		}
	}
	for _, op := range []Operator{NewSRT(0.8), NewTRT(0.8, MagicParameter)} {
		if err := quick.Check(check(op), &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
}

// SRT with tau=1 projects straight onto equilibrium.
func TestSRTFullRelaxation(t *testing.T) {
	s := lattice.D3Q19()
	o := NewSRT(1.0)
	r := rand.New(rand.NewSource(3))
	f := randomPDFs(r, s.Q)
	rho, ux, uy, uz := s.Moments(f)
	feq := make([]float64, s.Q)
	s.Equilibrium(feq, rho, ux, uy, uz)
	o.Collide(s, f)
	for a := range f {
		if math.Abs(f[a]-feq[a]) > 1e-14 {
			t.Errorf("tau=1 did not project onto equilibrium at %d", a)
		}
	}
}

func TestOperatorNames(t *testing.T) {
	if NewSRT(1).Name() != "SRT" || NewTRT(1, MagicParameter).Name() != "TRT" {
		t.Error("operator names wrong")
	}
}
