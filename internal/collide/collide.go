// Package collide implements the LBM collision operators used in the
// paper: the single-relaxation-time (SRT/LBGK) model of Bhatnagar, Gross
// and Krook and the two-relaxation-time (TRT) model of Ginzburg et al.
//
// Both operators act on the PDF vector of a single cell; the compute
// kernels in package kernels inline specialized versions of the same math,
// and the generic implementations here serve as their reference and as the
// collision stage of the generic kernel.
package collide

import (
	"fmt"
	"math"

	"walberla/internal/lattice"
)

// Operator is a collision operator acting in place on the PDFs of one cell.
type Operator interface {
	// Name identifies the operator ("SRT", "TRT") in reports.
	Name() string
	// Collide relaxes f (length s.Q) toward equilibrium in place.
	Collide(s *lattice.Stencil, f []float64)
}

// SRT is the single-relaxation-time (LBGK) collision operator
//
//	Omega_a = -1/tau * (f_a - f_a^eq).
type SRT struct {
	// Tau is the relaxation time; stability requires Tau > 1/2.
	Tau float64
}

// NewSRT constructs an SRT operator from the relaxation time tau.
func NewSRT(tau float64) SRT {
	if tau <= 0.5 {
		panic(fmt.Sprintf("collide: SRT tau = %v must exceed 1/2", tau))
	}
	return SRT{Tau: tau}
}

// NewSRTFromViscosity constructs an SRT operator for the given kinematic
// viscosity in lattice units: nu = c_s^2 (tau - 1/2), c_s^2 = 1/3.
func NewSRTFromViscosity(nu float64) SRT {
	if nu <= 0 {
		panic(fmt.Sprintf("collide: viscosity %v must be positive", nu))
	}
	return SRT{Tau: 3.0*nu + 0.5}
}

// Name implements Operator.
func (o SRT) Name() string { return "SRT" }

// Omega returns the relaxation rate 1/tau.
func (o SRT) Omega() float64 { return 1.0 / o.Tau }

// Viscosity returns the kinematic viscosity nu = (tau - 1/2)/3.
func (o SRT) Viscosity() float64 { return (o.Tau - 0.5) / 3.0 }

// Collide implements Operator.
func (o SRT) Collide(s *lattice.Stencil, f []float64) {
	rho, ux, uy, uz := s.Moments(f)
	omega := 1.0 / o.Tau
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)
	for a := 0; a < s.Q; a++ {
		cu := 3.0 * (float64(s.Cx[a])*ux + float64(s.Cy[a])*uy + float64(s.Cz[a])*uz)
		feq := s.W[a] * rho * (1.0 + cu + 0.5*cu*cu - usq)
		f[a] -= omega * (f[a] - feq)
	}
}

// TRT is the two-relaxation-time collision operator
//
//	Omega_a = lambdaE (f_a^+ - f_a^eq+) + lambdaO (f_a^- - f_a^eq-)
//
// with f^+/f^- the even/odd (symmetric/antisymmetric) parts of f over
// direction pairs (a, abar). Both relaxation parameters are negative;
// lambdaE = lambdaO = -1/tau recovers SRT.
type TRT struct {
	// LambdaE relaxes the even (symmetric) part and fixes the viscosity.
	LambdaE float64
	// LambdaO relaxes the odd (antisymmetric) part.
	LambdaO float64
}

// MagicParameter is the canonical "magic" value Lambda = 3/16 at which the
// TRT bounce-back wall is located exactly halfway between lattice nodes.
const MagicParameter = 3.0 / 16.0

// NewTRT constructs a TRT operator from the relaxation time tau (defining
// viscosity exactly as SRT) and the magic parameter
//
//	Lambda = (1/omegaE - 1/2)(1/omegaO - 1/2),  omega = -lambda.
func NewTRT(tau, magic float64) TRT {
	if tau <= 0.5 {
		panic(fmt.Sprintf("collide: TRT tau = %v must exceed 1/2", tau))
	}
	if magic <= 0 {
		panic(fmt.Sprintf("collide: magic parameter %v must be positive", magic))
	}
	lambdaE := -1.0 / tau
	// Solve (tau - 1/2)(1/omegaO - 1/2) = Lambda for omegaO.
	tauO := magic/(tau-0.5) + 0.5
	return TRT{LambdaE: lambdaE, LambdaO: -1.0 / tauO}
}

// Name implements Operator.
func (o TRT) Name() string { return "TRT" }

// Viscosity returns the kinematic viscosity nu = (-1/lambdaE - 1/2)/3.
func (o TRT) Viscosity() float64 { return (-1.0/o.LambdaE - 0.5) / 3.0 }

// Magic returns the magic parameter Lambda of the operator.
func (o TRT) Magic() float64 {
	return (-1.0/o.LambdaE - 0.5) * (-1.0/o.LambdaO - 0.5)
}

// maxQ bounds the stencil sizes the stack-allocated scratch of Collide
// supports (D3Q27 is the largest shipped model).
const maxQ = 27

// Collide implements Operator. It is allocation-free for all shipped
// stencils (Q <= 27).
func (o TRT) Collide(s *lattice.Stencil, f []float64) {
	rho, ux, uy, uz := s.Moments(f)
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)
	var feqBuf, postBuf [maxQ]float64
	feq := feqBuf[:s.Q]
	post := postBuf[:s.Q]
	if s.Q > maxQ {
		feq = make([]float64, s.Q)
		post = make([]float64, s.Q)
	}
	for a := 0; a < s.Q; a++ {
		cu := 3.0 * (float64(s.Cx[a])*ux + float64(s.Cy[a])*uy + float64(s.Cz[a])*uz)
		feq[a] = s.W[a] * rho * (1.0 + cu + 0.5*cu*cu - usq)
	}
	for a := 0; a < s.Q; a++ {
		ab := int(s.Inv[a])
		fp := 0.5 * (f[a] + f[ab])
		fm := 0.5 * (f[a] - f[ab])
		feqP := 0.5 * (feq[a] + feq[ab])
		feqM := 0.5 * (feq[a] - feq[ab])
		post[a] = f[a] + o.LambdaE*(fp-feqP) + o.LambdaO*(fm-feqM)
	}
	copy(f, post)
}

// EquivalentSRT reports whether the TRT parameters reduce the operator to
// SRT (lambdaE == lambdaO) and, if so, the corresponding tau.
func (o TRT) EquivalentSRT() (tau float64, ok bool) {
	if math.Abs(o.LambdaE-o.LambdaO) > 1e-15 {
		return 0, false
	}
	return -1.0 / o.LambdaE, true
}
