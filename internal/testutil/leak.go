// Package testutil holds helpers shared by test code across packages.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckLeaks registers a cleanup that fails the test if goroutines
// started during the test are still alive when it ends. Severed socket
// connections, killed serve sessions and abandoned recovery collectives
// all historically risked leaving reader or timer goroutines behind; this
// turns such a leak into a named-stack test failure instead of silent
// creep across the suite.
//
// Goroutine teardown is asynchronous (connection readers notice a close,
// pools drain), so the check polls for a grace period before declaring a
// leak. Call it at the top of a test, before starting any work:
//
//	func TestX(t *testing.T) {
//		testutil.CheckLeaks(t)
//		...
//	}
func CheckLeaks(t *testing.T) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		const grace = 5 * time.Second
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range goroutineIDs() {
				if _, ok := before[id]; !ok && !ignorable(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d goroutine(s) leaked by this test:\n", len(leaked))
		for _, stack := range leaked {
			b.WriteString(stack)
			b.WriteString("\n\n")
		}
		t.Error(b.String())
	})
}

// goroutineIDs snapshots every live goroutine, keyed by its runtime id,
// with the full named stack as the value.
func goroutineIDs() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		// Each record starts "goroutine <id> [<state>]:".
		if !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		header := g[:strings.IndexByte(g, '\n')]
		fields := strings.Fields(header)
		if len(fields) < 2 {
			continue
		}
		out[fields[1]] = g
	}
	return out
}

// ignorable filters goroutines the test cannot be blamed for: the testing
// framework's own machinery and runtime-internal workers.
func ignorable(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runTests",
		"runtime.goexit",
		"created by runtime",
		"runtime/trace",
		"os/signal.signal_recv",
		"runtime.gc",
	} {
		if strings.Contains(stack, "created by "+marker) || strings.HasPrefix(stackCreator(stack), marker) {
			return true
		}
	}
	// A goroutine currently executing inside the testing package (e.g.
	// this cleanup itself, or a parallel subtest waiting its turn).
	first := stackTopFunc(stack)
	return strings.HasPrefix(first, "testing.") || strings.HasPrefix(first, "runtime.")
}

// stackTopFunc returns the innermost function name of a stack record.
func stackTopFunc(stack string) string {
	lines := strings.Split(stack, "\n")
	if len(lines) < 2 {
		return ""
	}
	f := lines[1]
	if i := strings.IndexByte(f, '('); i > 0 {
		return f[:i]
	}
	return f
}

// stackCreator returns the "created by" function of a stack record, ""
// for the main goroutine.
func stackCreator(stack string) string {
	i := strings.LastIndex(stack, "created by ")
	if i < 0 {
		return ""
	}
	rest := stack[i+len("created by "):]
	if j := strings.IndexAny(rest, " \n"); j > 0 {
		return rest[:j]
	}
	return rest
}
