GO ?= go

.PHONY: all build test vet race race-sim verify bench bench-hybrid clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sim re-runs the simulation driver tests uncached under the race
# detector: the hybrid bit-identity tests (multi-worker vs serial,
# resilient replay with workers > 1) must pass fresh on every gate.
race-sim:
	$(GO) test -race -count=1 ./internal/sim/...

# verify is the pre-commit gate: static checks, a full build, and the
# test suite under the race detector.
verify: vet build race-sim race

bench:
	$(GO) test -bench=. -benchtime=0.2s -run='^$$' ./internal/...

# bench-hybrid measures serial vs multi-worker MLUPS and writes
# BENCH_hybrid.json.
bench-hybrid: build
	$(GO) run ./cmd/walberla-bench -fig hybrid

clean:
	$(GO) clean ./...
