GO ?= go

.PHONY: all build test vet race race-sim alloc-test verify bench bench-hybrid bench-comm clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sim re-runs the simulation driver tests uncached under the race
# detector: the hybrid bit-identity tests (multi-worker vs serial,
# resilient replay with workers > 1) must pass fresh on every gate.
race-sim:
	$(GO) test -race -count=1 ./internal/sim/...

# alloc-test re-runs the steady-state allocation regression gate of the
# ghost exchange uncached and WITHOUT the race detector (race
# instrumentation allocates, so the test skips itself under -race).
alloc-test:
	$(GO) test -count=1 -run 'TestStepZeroAlloc' ./internal/sim/

# verify is the pre-commit gate: static checks, a full build, the
# allocation regression gate, and the test suite under the race detector.
verify: vet build alloc-test race-sim race

bench:
	$(GO) test -bench=. -benchtime=0.2s -run='^$$' ./internal/...

# bench-hybrid measures serial vs multi-worker MLUPS and writes
# BENCH_hybrid.json.
bench-hybrid: build
	$(GO) run ./cmd/walberla-bench -fig hybrid

# bench-comm compares the per-block-pair and rank-aggregated ghost
# exchange wire formats (messages/bytes per step, MLUPS) and writes
# BENCH_comm.json.
bench-comm: build
	$(GO) run ./cmd/walberla-bench -fig comm

clean:
	$(GO) clean ./...
