GO ?= go

.PHONY: all build test vet race verify bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the pre-commit gate: static checks, a full build, and the
# test suite under the race detector.
verify: vet build race

bench:
	$(GO) test -bench=. -benchtime=0.2s -run='^$$' ./internal/...

clean:
	$(GO) clean ./...
