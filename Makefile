GO ?= go

.PHONY: all build test vet race race-sim race-resilience race-net race-serve race-amr alloc-test fuzz-smoke chaos-smoke verify bench bench-hybrid bench-comm bench-resilience bench-phases bench-net bench-serve bench-amr clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sim re-runs the simulation driver tests uncached under the race
# detector: the hybrid bit-identity tests (multi-worker vs serial,
# resilient replay with workers > 1) must pass fresh on every gate.
race-sim:
	$(GO) test -race -count=1 ./internal/sim/...

# race-resilience re-runs only the fault-tolerance tests (shrinking and
# healing recovery, spare-rank rejoin, world re-grow, buddy replication,
# checkpoint sets, rewind replay) uncached under the race detector — the
# quick gate while working on recovery code.
race-resilience:
	$(GO) test -race -count=1 -run 'TestShrink|TestReplicate|TestResilient|TestRestore|TestWriteCheckpoint|TestBackoff|TestMaxFailures|TestFail|TestHeal|TestSpare|TestGrowWorld|TestChaos' ./internal/sim/ ./internal/comm/

# race-net re-runs the socket-transport suite uncached under the race
# detector: wire framing, reconnect/backoff with the frame fault
# injector, failure accusation, and the cross-transport bit-identity and
# shrink-recovery-over-sockets tests.
race-net:
	$(GO) test -race -count=1 -run 'TestNet|TestFrame|TestCrossTransport|TestScalar|TestClassify|TestReadFrame|TestF64Bytes' ./internal/comm/ ./internal/sim/

# race-serve re-runs the session daemon suite uncached under the race
# detector: concurrent session lifecycles over the shared fair-share
# gate, bit-identical suspend/resume, the scenario schema round trip and
# the HTTP API surface.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/ ./internal/scenario/

# race-amr re-runs the adaptive mesh refinement suite uncached under the
# race detector: the level-wise timestepping determinism battery
# (workers/ranks/layout/transport bit-identity), the runtime
# refine/coarsen controller, migration, the grading invariants and the
# AMR resilience tests (rewind replay, buddy shrink with zero disk
# reads).
race-amr:
	$(GO) test -race -count=1 ./internal/amr/ ./internal/blockforest/

# alloc-test re-runs the steady-state allocation regression gates
# uncached and WITHOUT the race detector (race instrumentation allocates,
# so the tests skip themselves under -race): TestStepZeroAlloc with
# telemetry disabled AND TestStepZeroAllocTraced with a tracer and
# metrics registry attached — the telemetry overhead guard.
alloc-test:
	$(GO) test -count=1 -run 'TestStepZeroAlloc' ./internal/sim/

# fuzz-smoke runs each fuzz target briefly against its seed corpus — a
# regression sweep, not an open-ended hunt: the checkpoint readers, the
# wire frame decoder, and the sparse interval-list builder.
fuzz-smoke:
	$(GO) test -run '^Fuzz' -fuzz FuzzReadManifest -fuzztime 5s ./internal/output/
	$(GO) test -run '^Fuzz' -fuzz FuzzReadRankFile -fuzztime 5s ./internal/output/
	$(GO) test -run '^Fuzz' -fuzz FuzzLoadCheckpoint -fuzztime 5s ./internal/output/
	$(GO) test -run '^Fuzz' -fuzz FuzzDecodeFrame -fuzztime 5s ./internal/comm/
	$(GO) test -run '^Fuzz' -fuzz FuzzSparseIntervals -fuzztime 5s ./internal/kernels/
	$(GO) test -run '^Fuzz' -fuzz FuzzRegrade -fuzztime 5s ./internal/blockforest/

# chaos-smoke runs the deterministic multi-layer chaos soak uncached
# under the race detector: seeded frame drop/corruption/delay/sever, rank
# crashes, a silent hang and on-disk checkpoint bit-flips against a
# 4-active + 3-spare heal-mode world, asserting the run ends at full
# world size, bit-identical to the fault-free reference, with all
# recoveries served from buddy memory and no leaked goroutines.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/sim/

# verify is the pre-commit gate: static checks, a full build, the
# allocation regression gate, the fuzz seed sweep, the chaos soak, and
# the test suite under the race detector.
verify: vet build alloc-test fuzz-smoke chaos-smoke race-net race-sim race-serve race-amr race

bench:
	$(GO) test -bench=. -benchtime=0.2s -run='^$$' ./internal/...

# bench-hybrid measures serial vs multi-worker MLUPS and writes
# BENCH_hybrid.json.
bench-hybrid: build
	$(GO) run ./cmd/walberla-bench -fig hybrid

# bench-comm compares the per-block-pair and rank-aggregated ghost
# exchange wire formats (messages/bytes per step, MLUPS) and writes
# BENCH_comm.json.
bench-comm: build
	$(GO) run ./cmd/walberla-bench -fig comm

# bench-resilience compares recovery latency (restore and MTTR) of the
# in-memory buddy shrink path, the spare-rank heal path and disk
# rewind-and-replay at equal checkpoint intervals, appends a timestamped
# record to BENCH_resilience.json, and fails if restore latency or MTTR
# regressed past 1.5x+1ms of the best recorded baseline (or any in-memory
# recovery touched disk).
bench-resilience: build
	$(GO) run ./cmd/walberla-bench -fig resilience
	$(GO) run ./cmd/walberla-bench -compare

# bench-phases breaks the step time into its split-phase components
# (exchange post, interior sweep, residual wait, frontier sweep) per
# worker count, on the telemetry timers, appends a timestamped record to
# BENCH_phases.json, and fails if end-to-end MLUPS or the kernel/roofline
# ratio regressed more than 5% against the best recorded baseline.
bench-phases: build
	$(GO) run ./cmd/walberla-bench -fig phases
	$(GO) run ./cmd/walberla-bench -compare

# bench-net compares the in-process communicator with the unix/tcp
# socket transports on the same ghost-exchange workload, measures
# reconnect recovery after severed connections, calibrates the postal
# model (latency, bandwidth) against the real wire, and writes
# BENCH_net.json.
bench-net: build
	$(GO) run ./cmd/walberla-bench -fig net

# bench-amr compares runtime adaptive mesh refinement against uniform
# coarse and uniform fine baselines on a Gaussian shear layer (an exact
# Navier-Stokes solution): cell-count savings, RMS profile error vs the
# analytic solution, per-level MLUPS and the re-grade + migration
# overhead. Appends a timestamped record to
# BENCH_amr.json and fails if the refined run's cell savings drop below
# 4x, its accuracy falls behind uniform coarse, or its MLUPS regresses
# more than 25% against the best recorded baseline.
bench-amr: build
	$(GO) run ./cmd/walberla-bench -fig amr
	$(GO) run ./cmd/walberla-bench -compare

# bench-serve measures the session daemon: session create latency,
# suspend/resume round trip through a checkpoint set, and aggregate
# MLUPS at 1/4/8 concurrent sessions over the shared stepping gate vs
# one dedicated run. Writes BENCH_serve.json.
bench-serve: build
	$(GO) run ./cmd/walberla-bench -fig serve

clean:
	$(GO) clean ./...
