module walberla

go 1.22
