// Quickstart: a lid-driven cavity on 2x2x2 blocks across four ranks in a
// few lines — the "hello world" of the framework.
package main

import (
	"fmt"
	"log"
	"sync"

	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
)

func main() {
	// 2x2x2 blocks of 16^3 cells each (a 32^3 cavity), lid velocity 0.05,
	// distributed over 4 ranks.
	problem := core.LidDrivenCavity([3]int{2, 2, 2}, [3]int{16, 16, 16}, 0.05, 4)

	// Run and probe the vertical centerline of the x-velocity: the
	// signature profile of the cavity (positive near the moving lid,
	// reversed return flow below).
	var mu sync.Mutex
	profile := make([]float64, 32)
	var metrics sim.Metrics
	err := problem.RunEach(500, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		mu.Lock()
		defer mu.Unlock()
		if c.Rank() == 0 {
			metrics = m
		}
		for _, bd := range s.Blocks {
			if bd.Block.Coord[0] != 0 || bd.Block.Coord[1] != 0 {
				continue // the centerline passes through the x=0,y=0 block column
			}
			for z := 0; z < bd.Src.Nz; z++ {
				_, ux, _, _ := bd.Src.Moments(15, 15, z)
				profile[bd.Block.Coord[2]*16+z] = ux
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lid-driven cavity:", metrics)
	fmt.Println("\n z   u_x(centerline)")
	for z, ux := range profile {
		fmt.Printf("%2d  %+.6f\n", z, ux)
	}
}
