// Coronary tree end-to-end: the complete complex-geometry pipeline of the
// paper on the synthetic coronary artery tree — geometry generation,
// block classification with discarding of empty blocks, METIS-style load
// balancing on the fluid-cell workload graph, per-rank voxelization with
// boundary conditions from surface colors, and a blood-flow simulation
// with the sparse compressed-row kernel.
package main

import (
	"fmt"
	"log"
	"sync"

	"walberla/internal/analysis"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/vascular"
)

func main() {
	const ranks = 4

	// 1. Synthetic coronary tree (substitute for the CTA dataset).
	params := vascular.DefaultParams()
	params.Depth = 3
	tree := vascular.Generate(params)
	fmt.Printf("synthetic coronary tree: %d segments, %d outlets, fill fraction %.2f%% of bounding box\n",
		len(tree.Segments), tree.Leaves(), 100*tree.FillFraction())
	sdf, err := tree.SDF()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Initialization: block grid over the geometry, classification,
	// fluid-cell workloads, graph-partitioned static load balancing.
	opts := setup.Options{
		CellsPerBlock:       [3]int{12, 12, 12},
		Dx:                  params.RootRadius / 3,
		Ranks:               ranks,
		Seed:                1,
		UseGraphPartitioner: true,
	}
	forest, stats, err := setup.BuildForest(sdf, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioning: grid %v, %d blocks kept (%d discarded), %.1f%% fluid\n",
		stats.Grid, stats.Blocks, stats.DiscardedBlocks, 100*stats.FluidFraction)
	workloads := forest.RankWorkloads(ranks)
	fmt.Printf("per-rank fluid-cell workloads after balancing: %v\n", workloads)

	// 3. Distributed simulation: inflow at the root, outflow at the
	// leaves, sparse interval kernel.
	problem := &core.Problem{
		Geometry:      sdf,
		Dx:            opts.Dx,
		CellsPerBlock: opts.CellsPerBlock,
		Kernel:        sim.KernelSparse,
		Tau:           0.6,
		Boundary: boundary.Config{
			WallVelocity: [3]float64{0, 0, 0.02}, // inflow along the root axis (+z)
			Density:      1.0,
		},
		Ranks:               ranks,
		Seed:                1,
		UseGraphPartitioner: true,
	}

	var mu sync.Mutex
	var metrics sim.Metrics
	var inletFlux, residual float64
	var fluxProfile []float64
	err = problem.RunEach(400, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		// Collective measurements first — no lock may be held across a
		// collective call (every rank must reach it).
		// Volumetric flux through cross-sections along the tree axis:
		// the inlet plane and a few planes downstream.
		nzTotal := s.Forest.GridSize[2] * opts.CellsPerBlock[2]
		var fluxes []float64
		for _, frac := range []float64{0.05, 0.25, 0.5, 0.75} {
			fluxes = append(fluxes, analysis.PlaneFlux(c, s, analysis.AxisZ, int(frac*float64(nzTotal))))
		}
		// Convergence state of the run.
		r := analysis.NewResidual()
		r.Update(c, s)
		if _, err := s.Run(20); err != nil {
			log.Fatal(err)
		}
		res := r.Update(c, s)
		if c.Rank() != 0 {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		metrics = m
		fluxProfile = fluxes
		inletFlux = fluxes[0]
		residual = res
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation:", metrics)
	fmt.Printf("MFLUPS: %.2f (fluid cells only), MLUPS: %.2f (all traversed cells)\n",
		metrics.MFLUPS, metrics.MLUPS)
	fmt.Printf("flux through cross-sections at 5%%/25%%/50%%/75%% of the tree height: %.4f %.4f %.4f %.4f\n",
		fluxProfile[0], fluxProfile[1], fluxProfile[2], fluxProfile[3])
	fmt.Printf("velocity-field residual over 20 further steps: %.2e\n", residual)
	if inletFlux <= 0 {
		log.Fatal("no through-flow developed")
	}
}
