// Taylor-Green vortex: quantitative Navier-Stokes validation against the
// fully analytic viscous decay, run distributed over four ranks. The
// kinetic energy of the vortex lattice must decay as exp(-4 nu k^2 t)
// with nu = (tau - 1/2)/3 — measuring this validates collision,
// streaming, the periodic ghost exchange and the unit relations in one
// number.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/sim"
)

const (
	n     = 32
	u0    = 0.02
	tau   = 0.75
	ranks = 4
)

func main() {
	nu := (tau - 0.5) / 3.0
	k := 2 * math.Pi / float64(n)

	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 1}, [3]int{n / 2, n / 2, 2}, [3]bool{true, true, true})
	f.BalanceMorton(ranks)

	fmt.Printf("Taylor-Green vortex, %d^2 cells, tau=%g (nu=%g), u0=%g\n", n, tau, nu, u0)
	fmt.Println("\n steps   E/E0(measured)  E/E0(analytic)  error%")

	var mu sync.Mutex
	comm.Run(ranks, func(c *comm.Comm) {
		var in *blockforest.SetupForest
		if c.Rank() == 0 {
			in = f
		}
		forest, err := blockforest.Distribute(c, in)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sim.New(c, forest, sim.Config{
			Tau: tau,
			InitialState: func(x, y, z int) (float64, float64, float64, float64) {
				fx := (float64(x) + 0.5) * k
				fy := (float64(y) + 0.5) * k
				return 1.0,
					u0 * math.Cos(fx) * math.Sin(fy),
					-u0 * math.Sin(fx) * math.Cos(fy),
					0
			},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		energy := func() float64 {
			var e float64
			for _, bd := range s.Blocks {
				for z := 0; z < bd.Src.Nz; z++ {
					for y := 0; y < bd.Src.Ny; y++ {
						for x := 0; x < bd.Src.Nx; x++ {
							_, ux, uy, uz := bd.Src.Moments(x, y, z)
							e += ux*ux + uy*uy + uz*uz
						}
					}
				}
			}
			return c.AllreduceFloat64(e, comm.Sum[float64])
		}
		e0 := energy()
		const chunk = 50
		for step := chunk; step <= 400; step += chunk {
			if _, err := s.Run(chunk); err != nil {
				log.Fatal(err)
			}
			e := energy()
			if c.Rank() == 0 {
				mu.Lock()
				want := math.Exp(-4 * nu * k * k * float64(step))
				got := e / e0
				fmt.Printf("%6d   %.6f        %.6f        %+.3f%%\n",
					step, got, want, 100*(got-want)/want)
				mu.Unlock()
			}
		}
	})
	fmt.Println("\nvalidation: measured decay tracks the analytic Navier-Stokes solution")
}
