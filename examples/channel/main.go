// Channel flow around a fixed obstacle — the second dense weak scaling
// scenario of the paper (obstacle-to-fluid ratio below 1 %). A velocity
// inflow drives fluid through a long channel past a box obstacle toward a
// pressure outflow; the run reports flow statistics and the performance
// metrics of the distributed simulation.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/field"
	"walberla/internal/sim"
)

func main() {
	const (
		blocksX = 4
		cells   = 16
		ranks   = 4
		inflow  = 0.03
		steps   = 800
	)
	// A channel of 4x1x1 blocks (64x16x16 cells) with a 4x6x6 obstacle
	// in the second block: obstacle/fluid ratio ~0.9 %.
	obstacleMin := [3]int{24, 5, 5}
	obstacleMax := [3]int{28, 11, 11}
	problem := &core.Problem{
		Grid:          [3]int{blocksX, 1, 1},
		CellsPerBlock: [3]int{cells, cells, cells},
		Tau:           0.55,
		Boundary: boundary.Config{
			WallVelocity: [3]float64{inflow, 0, 0},
			Density:      1.0,
		},
		Ranks:      ranks,
		SetupFlags: core.ChannelFlags(obstacleMin, obstacleMax),
	}

	var mu sync.Mutex
	var metrics sim.Metrics
	var maxSpeed float64
	var obstacleCells int
	// Mean streamwise velocity upstream and beside the obstacle.
	var upstreamSum, besideSum float64
	var upstreamN, besideN int

	err := problem.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		mu.Lock()
		defer mu.Unlock()
		if c.Rank() == 0 {
			metrics = m
		}
		for _, bd := range s.Blocks {
			baseX := bd.Block.Coord[0] * cells
			for z := 0; z < cells; z++ {
				for y := 0; y < cells; y++ {
					for x := 0; x < cells; x++ {
						if bd.Flags.Get(x, y, z) != field.Fluid {
							if gx := baseX + x; gx >= obstacleMin[0] && gx < obstacleMax[0] {
								obstacleCells++
							}
							continue
						}
						_, ux, uy, uz := bd.Src.Moments(x, y, z)
						speed := math.Sqrt(ux*ux + uy*uy + uz*uz)
						if speed > maxSpeed {
							maxSpeed = speed
						}
						gx := baseX + x
						switch {
						case gx == 8: // upstream cross-section
							upstreamSum += ux
							upstreamN++
						case gx == 26 && (y < obstacleMin[1] || y >= obstacleMax[1]):
							// beside the obstacle: the flow accelerates
							besideSum += ux
							besideN++
						}
					}
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("channel flow around obstacle:", metrics)
	up := upstreamSum / float64(upstreamN)
	beside := besideSum / float64(besideN)
	fmt.Printf("obstacle cells (non-fluid in channel): %d\n", obstacleCells)
	fmt.Printf("mean u_x upstream:        %.5f\n", up)
	fmt.Printf("mean u_x beside obstacle: %.5f (blockage accelerates the flow %.1fx)\n",
		beside, beside/up)
	fmt.Printf("max |u|: %.5f (stability bound 0.1-0.3)\n", maxSpeed)
}
