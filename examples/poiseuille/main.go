// Poiseuille validation: force-driven plane channel flow between no-slip
// plates, compared against the analytic parabolic profile. With the TRT
// collision operator at the magic parameter 3/16 the bounce-back walls sit
// exactly halfway between lattice nodes, making this the standard
// quantitative accuracy benchmark for the solver — and a direct
// demonstration of why the paper prefers TRT over SRT.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/sim"
)

const (
	nz    = 16   // channel height in cells
	force = 1e-6 // body force density along x
	steps = 12000
)

func run(kernel sim.KernelChoice, tau float64) []float64 {
	problem := &core.Problem{
		Grid:          [3]int{1, 1, 2},
		CellsPerBlock: [3]int{4, 4, nz / 2},
		Periodic:      [3]bool{true, true, false},
		Kernel:        kernel,
		Tau:           tau,
		Force:         [3]float64{force, 0, 0},
		Ranks:         2,
		SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
			if b.Neighbor([3]int{0, 0, -1}) == nil {
				sim.MarkGhostFace(flags, lattice.FaceB, field.NoSlip)
			}
			if b.Neighbor([3]int{0, 0, 1}) == nil {
				sim.MarkGhostFace(flags, lattice.FaceT, field.NoSlip)
			}
		},
	}
	var mu sync.Mutex
	profile := make([]float64, nz)
	err := problem.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
		mu.Lock()
		defer mu.Unlock()
		for _, bd := range s.Blocks {
			zBase := bd.Block.Coord[2] * nz / 2
			for z := 0; z < nz/2; z++ {
				_, ux, _, _ := bd.Src.Moments(2, 2, z)
				profile[zBase+z] = ux
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return profile
}

func analytic(tau float64) []float64 {
	nu := (tau - 0.5) / 3.0
	out := make([]float64, nz)
	for z := 0; z < nz; z++ {
		zt := float64(z) + 0.5 - float64(nz)/2
		out[z] = force / (2 * nu) * (float64(nz*nz)/4 - zt*zt)
	}
	return out
}

func maxRelError(got, want []float64) float64 {
	var m, peak float64
	for z := range want {
		if want[z] > peak {
			peak = want[z]
		}
	}
	for z := range got {
		if e := math.Abs(got[z]-want[z]) / peak; e > m {
			m = e
		}
	}
	return m
}

func main() {
	const tau = 0.9
	want := analytic(tau)

	fmt.Println("plane Poiseuille flow, force-driven, TRT magic parameter 3/16")
	trt := run(sim.KernelSplitTRT, tau)
	fmt.Println("\n z   u_x(TRT)     u_x(analytic)  error-pct-of-peak")
	for z := 0; z < nz; z++ {
		fmt.Printf("%2d  %.8f   %.8f    %+.3f%%\n",
			z, trt[z], want[z], 100*(trt[z]-want[z])/want[nz/2])
	}
	trtErr := maxRelError(trt, want)
	fmt.Printf("\nTRT  max error: %.3f%% of peak velocity\n", 100*trtErr)

	srt := run(sim.KernelSplitSRT, tau)
	srtErr := maxRelError(srt, want)
	fmt.Printf("SRT  max error: %.3f%% of peak velocity\n", 100*srtErr)

	if trtErr > 0.02 {
		log.Fatalf("TRT profile deviates %.2f%% from analytic solution", 100*trtErr)
	}
	fmt.Println("\nvalidation PASSED: parabolic profile recovered")
}
